"""Figure 17: plan quality and plan-generation time for large patterns.

No stream execution here — the paper switches to *normalized plan cost*
(cost of the EFREQ plan divided by the cost of the algorithm's plan;
higher is better) because executing size-22 patterns is infeasible, and
measures plan-generation time (17b, log scale).

Paper shape: the DP methods produce by far the cheapest plans (up to
57x normalized) but their generation time explodes with size, while the
heuristics stay near-instant; GREEDY offers the best time/quality
trade-off.  We cap the DP sizes (DP-LD <= 13, DP-B <= 11) to keep the
bench in seconds — beyond that the paper itself reports hours.
"""

from __future__ import annotations

import random
import time

from repro.bench import format_series
from repro.cost import ThroughputCostModel
from repro.optimizers import make_optimizer
from repro.patterns import decompose, parse_pattern
from repro.stats import PatternStatistics

SIZES = (3, 6, 9, 12, 16, 22)
ALGORITHMS = (
    "EFREQ",
    "GREEDY",
    "II-RANDOM",
    "II-GREEDY",
    "SA",
    "DP-LD",
    "DP-B",
    "ZSTREAM",
    "ZSTREAM-ORD",
)
DP_SIZE_CAP = {"DP-LD": 13, "DP-B": 11, "ZSTREAM": 16, "ZSTREAM-ORD": 16}
MODEL = ThroughputCostModel()


def _problem(size: int, seed: int = 5):
    rng = random.Random((seed, size).__repr__())
    names = [f"T{i}" for i in range(size)]
    spec = ", ".join(f"{n} v{i}" for i, n in enumerate(names))
    pattern = parse_pattern(f"PATTERN AND({spec}) WITHIN 5")
    d = decompose(pattern)
    variables = d.positive_variables
    rates = {v: rng.uniform(0.2, 5.0) for v in variables}
    selectivities = {}
    for i, first in enumerate(variables):
        for second in variables[i + 1:]:
            if rng.random() < 0.4:
                selectivities[frozenset((first, second))] = rng.uniform(
                    0.02, 0.9
                )
    stats = PatternStatistics(variables, 5.0, rates, selectivities)
    return d, stats


def _plan_cost(generator, d, stats):
    plan = generator.generate(d, stats, MODEL)
    return generator.plan_cost(plan, stats, MODEL)


def test_fig17_normalized_cost_and_time(benchmark, env):
    costs: dict[str, dict[int, float]] = {a: {} for a in ALGORITHMS}
    times: dict[str, dict[int, float]] = {a: {} for a in ALGORITHMS}
    for size in SIZES:
        d, stats = _problem(size)
        baseline = _plan_cost(make_optimizer("EFREQ"), d, stats)
        for algorithm in ALGORITHMS:
            cap = DP_SIZE_CAP.get(algorithm)
            if cap is not None and size > cap:
                continue
            generator = make_optimizer(algorithm)
            started = time.perf_counter()
            cost = _plan_cost(generator, d, stats)
            elapsed = time.perf_counter() - started
            costs[algorithm][size] = baseline / cost if cost > 0 else 0.0
            times[algorithm][size] = elapsed

    env.write(
        "fig17a_normalized_plan_cost.txt",
        format_series(
            "Figure 17(a) — normalized plan cost vs EFREQ (higher is "
            "better)",
            costs,
            SIZES,
        ),
    )
    env.write(
        "fig17b_plan_generation_seconds.txt",
        format_series(
            "Figure 17(b) — plan generation time in seconds (log scale in "
            "the paper)",
            times,
            SIZES,
        ),
    )

    # Shape assertions.
    for size in SIZES:
        # Cost-based heuristics beat the EFREQ baseline on large patterns.
        assert costs["GREEDY"][size] >= 1.0
    # DP is at least as good as every heuristic where it runs...
    for size in (3, 6, 9, 12):
        for algorithm in ("GREEDY", "II-RANDOM", "II-GREEDY", "SA"):
            assert (
                costs["DP-LD"][size] >= costs[algorithm][size] * 0.999
            )
    # ...but its generation time grows much faster than GREEDY's.
    assert times["DP-LD"][12] > times["GREEDY"][12] * 10
    # Non-DP methods stay under a second even at size 22 (paper: "all
    # non-dynamic algorithms completed in under a second").
    for algorithm in ("EFREQ", "GREEDY", "II-GREEDY", "SA"):
        assert times[algorithm][22] < 1.0

    d, stats = _problem(12)
    benchmark.pedantic(
        lambda: _plan_cost(make_optimizer("DP-LD"), d, stats),
        rounds=1,
        iterations=1,
    )
