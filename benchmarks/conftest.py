"""Pytest fixtures for the figure benchmarks (see ``_common.py``)."""

from __future__ import annotations

import pytest

from _common import BenchEnv, build_env


@pytest.fixture(scope="session")
def env() -> BenchEnv:
    return build_env()
