"""Figure 19: throughput under the event selection strategies (§6.2).

Runs the sequence pattern set under skip-till-any-match, skip-till-next-
match, and strict contiguity (the paper's three panels; its log-scale
bar chart) for every algorithm.

Paper shape:
* skip-till-any: JQPG methods clearly ahead (the Figure 4 result);
* skip-till-next: JQPG still ahead but by less (the min-rate cost model
  of Section 6.2 leaves less room to optimize);
* contiguity: TRIVIAL wins — the stream dictates the only useful order
  and any reordering only adds buffering overhead.
"""

from __future__ import annotations

from repro.bench import format_table
from repro.patterns import add_contiguity_predicates

from _common import ALL_ALGS, mean_by

STRATEGIES = ("any", "next", "strict")


def test_fig19_selection_strategies(benchmark, env):
    patterns = env.patterns("sequence", sizes=(3, 4))
    results = []
    for pattern in patterns:
        for strategy in STRATEGIES:
            run_pattern = pattern
            if strategy == "strict":
                run_pattern = add_contiguity_predicates(pattern)
                run_pattern = run_pattern.with_conditions(
                    run_pattern.conditions
                )
            for algorithm in ALL_ALGS:
                result = env.run(
                    run_pattern, algorithm, "sequence", selection=strategy
                )
                result.selection = strategy
                results.append(result)

    throughput = mean_by(results, "throughput", "algorithm", "selection")
    rows = []
    for algorithm in ALL_ALGS:
        rows.append(
            [algorithm]
            + [
                f"{throughput[(algorithm, s)]:,.0f}"
                for s in STRATEGIES
            ]
        )
    env.write(
        "fig19_selection_strategies.txt",
        format_table(
            ("algorithm", "skip-till-any", "skip-till-next", "contiguity"),
            rows,
            title=(
                "Figure 19 — throughput (events/s) per selection strategy"
            ),
        ),
    )

    matches = mean_by(results, "matches", "algorithm", "selection")
    # Restrictive strategies can only reduce the number of matches.
    for algorithm in ALL_ALGS:
        assert (
            matches[(algorithm, "next")]
            <= matches[(algorithm, "any")]
        )
        assert (
            matches[(algorithm, "strict")]
            <= matches[(algorithm, "next")] * 1.001
        )
    # Under skip-till-any, the match sets agree across algorithms.
    any_counts = {matches[(a, "any")] for a in ALL_ALGS}
    assert len(any_counts) == 1

    pattern = env.patterns("sequence", sizes=(4,))[0]
    benchmark.pedantic(
        lambda: env.run(pattern, "GREEDY", "sequence", selection="next"),
        rounds=1,
        iterations=1,
    )
