"""Figure 22 (extension): parallel partitioned execution scaling.

Not a figure of the source paper — this sweep evaluates
:mod:`repro.parallel`: one logical stream sharded across a
``multiprocessing`` worker pool, workers ∈ {1, 2, 4, 8}, against the
identical single-engine configuration.  Two workload families:

* **keyed** — the fig21 equi-join chain ``a.k = b.k = c.k`` under
  **key partitioning**.  Measured twice: with linear (seed) stores,
  where sharding by key prunes every probe's candidate space by the
  worker count — the CLASH-style partitioned-join-store effect, real
  even on a single core — and with indexed stores, where per-key hash
  buckets already bound probe work and the win is parallelism itself
  (visible only with >= 2 physical cores).
* **window** — the pure-theta pattern (no equality keys exist) under
  overlapping **window-slice partitioning**; the ``span + 2W`` overlap
  is the price of generality, so this family reports the replication
  factor alongside throughput.

Match lists are asserted byte-identical (canonical order) to the
single-engine run for every configuration — partitioning is an
execution strategy, never a semantics change.

Acceptance (full mode): >= 2x throughput at 4 workers on the keyed
linear-store sweep.  Machines with >= 4 physical cores will also see
the indexed rows scale; on smaller hosts those rows document the
process-pool overhead honestly (``cpus`` is recorded in the JSON).

Set ``REPRO_BENCH_SMOKE=1`` for a seconds-scale smoke run (CI).
Writes ``fig22_parallel_scaling.txt`` and the machine-readable
``BENCH_fig22.json`` for the CI perf-trajectory artifact.
"""

from __future__ import annotations

import os
import random
import time

from repro import (
    ParallelConfig,
    ParallelExecutor,
    build_engines,
    canonical_order,
    estimate_pattern_catalog,
    parse_pattern,
    plan_pattern,
)
from repro.events import Event, Stream
from repro.parallel import match_records

from _common import BenchEnv

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
#: Mean inter-arrival gap (seconds); windows below are in the same unit.
GAP = 0.02
TIMING_ROUNDS = 1 if SMOKE else 2

KEYED = "PATTERN SEQ(A a, B b, C c) WHERE a.k = b.k AND b.k = c.k WITHIN {w}"
THETA = "PATTERN SEQ(A a, B b, C c) WHERE a.v < b.v AND b.v < c.v WITHIN {w}"

if SMOKE:
    WORKER_COUNTS = (1, 2)
    #: (family, indexed, events, key cardinality, window)
    CONFIGS = (
        ("keyed", False, 400, 8, 1.5),
        ("window", True, 300, 8, 0.8),
    )
else:
    WORKER_COUNTS = (1, 2, 4, 8)
    CONFIGS = (
        ("keyed", False, 5000, 50, 4.0),
        ("keyed", True, 5000, 50, 4.0),
        ("window", True, 3000, 25, 1.0),
    )


def _stream(events_count: int, keys: int, seed: int = 22) -> Stream:
    rng = random.Random(seed)
    events, t = [], 0.0
    for _ in range(events_count):
        t += rng.expovariate(1.0 / GAP)
        events.append(
            Event(
                rng.choice("ABC"),
                t,
                {"k": rng.randrange(keys), "v": rng.random()},
            )
        )
    return Stream(events)


def _plan(family: str, window: float, stream: Stream):
    template = KEYED if family == "keyed" else THETA
    pattern = parse_pattern(template.format(w=window))
    catalog = estimate_pattern_catalog(pattern, stream)
    return plan_pattern(pattern, catalog, algorithm="GREEDY")


def _serial_wall(planned, stream, indexed):
    best, records = float("inf"), None
    for _ in range(TIMING_ROUNDS):
        engine = build_engines(planned, indexed=indexed)
        started = time.perf_counter()
        matches = engine.run(stream)
        best = min(best, time.perf_counter() - started)
        records = match_records(canonical_order(matches))
    return best, records


def _parallel_wall(planned, stream, indexed, family, workers):
    config = ParallelConfig(
        workers=workers,
        partitioner="key" if family == "keyed" else "window",
        backend="processes",
        batch_size=512,
    )
    best, records, executor = float("inf"), None, None
    for _ in range(TIMING_ROUNDS):
        executor = ParallelExecutor(planned, config, indexed=indexed)
        matches = executor.run(stream)
        best = min(best, executor.wall_seconds)
        records = match_records(matches)
    return best, records, executor


def test_fig22_parallel_scaling(benchmark, env: BenchEnv):
    rows, records = [], []
    for family, indexed, events_count, keys, window in CONFIGS:
        stream = _stream(events_count, keys)
        planned = _plan(family, window, stream)
        serial_wall, serial_records = _serial_wall(planned, stream, indexed)
        for workers in WORKER_COUNTS:
            par_wall, par_records, executor = _parallel_wall(
                planned, stream, indexed, family, workers
            )
            # Acceptance: identical canonical match lists, always.
            assert par_records == serial_records, (
                f"{family}/indexed={indexed} diverges at {workers} workers"
            )
            speedup = serial_wall / par_wall if par_wall > 0 else 1.0
            metrics = executor.metrics
            replication = (
                metrics.events_routed / events_count if events_count else 0.0
            )
            stores = "indexed" if indexed else "linear"
            rows.append(
                [
                    family,
                    stores,
                    workers,
                    len(par_records),
                    f"{events_count / serial_wall:,.0f}",
                    f"{events_count / par_wall:,.0f}",
                    f"{speedup:.1f}x",
                    f"{replication:.2f}",
                    metrics.boundary_duplicates_dropped,
                ]
            )
            records.append(
                {
                    "family": family,
                    "indexed": indexed,
                    "workers": workers,
                    "events": events_count,
                    "key_cardinality": keys,
                    "window": window,
                    "matches": len(par_records),
                    "serial_wall_s": serial_wall,
                    "parallel_wall_s": par_wall,
                    "speedup": speedup,
                    "events_routed": metrics.events_routed,
                    "replication": replication,
                    "boundary_duplicates_dropped": (
                        metrics.boundary_duplicates_dropped
                    ),
                }
            )

    env.write("fig22_parallel_scaling.txt", _format(rows))
    env.write_json(
        "BENCH_fig22.json",
        {"smoke": SMOKE, "cpus": os.cpu_count(), "runs": records},
    )

    if not SMOKE:
        # Acceptance: >= 2x at 4 workers on the keyed linear-store
        # sweep (the partition-pruning effect; core-count independent).
        for record in records:
            if (
                record["family"] == "keyed"
                and not record["indexed"]
                and record["workers"] == 4
            ):
                assert record["speedup"] >= 2.0, record

    family, indexed, events_count, keys, window = CONFIGS[0]
    stream = _stream(events_count, keys)
    planned = _plan(family, window, stream)
    benchmark.pedantic(
        lambda: ParallelExecutor(
            planned,
            ParallelConfig(workers=2, partitioner="key", backend="processes"),
            indexed=indexed,
        ).run(stream),
        rounds=1,
        iterations=1,
    )


def _format(rows) -> str:
    from repro.bench import format_table

    return format_table(
        (
            "workload",
            "stores",
            "workers",
            "matches",
            "ev/s serial",
            "ev/s parallel",
            "speedup",
            "routed/ev",
            "boundary drops",
        ),
        rows,
        title=(
            "Figure 22 — parallel partitioned execution "
            "(identical canonical match lists asserted; "
            "process-pool backend)"
        ),
    )
