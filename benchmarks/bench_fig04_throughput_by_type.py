"""Figure 4: mean throughput per pattern type (higher is better).

Paper shape: JQPG-adapted methods (GREEDY, II-*, DP-LD / ZSTREAM-ORD,
DP-B) beat the CEP-native baselines (TRIVIAL/EFREQ order plans, plain
ZSTREAM trees) on every pattern category; the exhaustive DP methods are
the best or tied-best in their plan family.

Our deterministic proxy assertion uses partial matches created (the
quantity throughput is inversely driven by); the wall-clock throughput
table is written to ``results/fig04_throughput_by_type.txt``.
"""

from __future__ import annotations

from repro.bench import format_table

from _common import ALL_ALGS, CATEGORIES, ORDER_ALGS, SIZES, TREE_ALGS, mean_by


def _sweep(env):
    return env.sweep("by_type", CATEGORIES, SIZES, ALL_ALGS)


def _table(env, results, metric, fmt):
    means = mean_by(results, metric, "algorithm", "category")
    rows = []
    for algorithm in ALL_ALGS:
        row = [algorithm]
        for category in CATEGORIES:
            row.append(fmt(means[(algorithm, category)]))
        rows.append(row)
    return format_table(
        ("algorithm",) + CATEGORIES,
        rows,
        title="Figure 4 — mean throughput (events/s) by pattern type",
    )


def test_fig04_throughput_by_type(benchmark, env):
    results = _sweep(env)
    env.write(
        "fig04_throughput_by_type.txt",
        _table(env, results, "throughput", lambda v: f"{v:,.0f}"),
    )

    # Shape assertions (model optimizes *expected* PM counts; allow the
    # estimation noise a real stream introduces per category, and be
    # strict on the cross-category mean).
    pm = mean_by(results, "pm_created", "algorithm", "category")
    for category in CATEGORIES:
        assert pm[("DP-LD", category)] <= pm[("TRIVIAL", category)] * 1.3
        assert pm[("DP-LD", category)] <= pm[("EFREQ", category)] * 1.3
        assert pm[("DP-B", category)] <= pm[("ZSTREAM", category)] * 1.3
    overall = mean_by(results, "pm_created", "algorithm")
    assert overall[("DP-LD",)] <= overall[("TRIVIAL",)] * 1.02
    assert overall[("DP-LD",)] <= overall[("EFREQ",)] * 1.02
    assert overall[("DP-B",)] <= overall[("ZSTREAM",)] * 1.02

    # Representative timed run for pytest-benchmark.
    pattern = env.patterns("sequence", sizes=(4,))[0]
    benchmark.pedantic(
        lambda: env.run(pattern, "DP-LD", "sequence"),
        rounds=1,
        iterations=1,
    )


def test_fig04_order_vs_tree_gap(benchmark, env):
    """Tree plans hold no more total state than order plans (§7.3).

    Compared on peak memory units (partial matches + buffered events),
    which is the family-comparable quantity: the tree engine's leaf
    stores double as its event buffers.
    """
    results = _sweep(env)
    memory = mean_by(results, "peak_memory_units", "algorithm")
    best_tree = min(memory[(a,)] for a in TREE_ALGS)
    best_order = min(memory[(a,)] for a in ORDER_ALGS)
    assert best_tree <= best_order * 1.2

    pattern = env.patterns("sequence", sizes=(4,))[0]
    benchmark.pedantic(
        lambda: env.run(pattern, "DP-B", "sequence"), rounds=1, iterations=1
    )
