"""Figures 12/13: throughput and memory vs *Kleene-closure* pattern size.

Sequences with one event type under KL.  The planning rewrite (Theorem
4) assigns the Kleene type its power-set rate, pushing it to the end of
cost-based plans; TRIVIAL keeps it wherever the pattern put it and pays
with exponentially many live tuple-instances.  The paper reports a 1.7x
throughput gain for DP-LD over EFREQ on this category — the smallest of
the five categories but still a win for the JQPG side.
"""

from __future__ import annotations

from repro.bench import format_series

from _common import ALL_ALGS, SIZES, mean_by

CATEGORY = "kleene"


def _series(results, metric):
    means = mean_by(results, metric, "algorithm", "pattern_size")
    return {
        algorithm: {size: means.get((algorithm, size)) for size in SIZES}
        for algorithm in ALL_ALGS
    }


def test_fig12_throughput_by_size(benchmark, env):
    results = env.sweep("by_type", (CATEGORY,), SIZES, ALL_ALGS)
    env.write(
        "fig12_kleene_throughput_by_size.txt",
        format_series(
            "Figure 12 — Kleene patterns: throughput (events/s) by size",
            _series(results, "throughput"),
            SIZES,
        ),
    )
    # Cost-based orders defer the Kleene type: far fewer live tuples
    # than the syntactic order on average.
    pm = mean_by(results, "pm_created", "algorithm")
    assert pm[("DP-LD",)] <= pm[("TRIVIAL",)] * 0.9

    pattern = env.patterns(CATEGORY, sizes=(max(SIZES),))[0]
    benchmark.pedantic(
        lambda: env.run(pattern, "DP-LD", CATEGORY), rounds=1, iterations=1
    )


def test_fig13_memory_by_size(benchmark, env):
    results = env.sweep("by_type", (CATEGORY,), SIZES, ALL_ALGS)
    env.write(
        "fig13_kleene_memory_by_size.txt",
        format_series(
            "Figure 13 — Kleene patterns: peak memory units by size",
            _series(results, "peak_memory_units"),
            SIZES,
        ),
    )
    memory = mean_by(results, "peak_memory_units", "algorithm")
    assert memory[("DP-LD",)] <= memory[("TRIVIAL",)] * 0.9
    assert memory[("GREEDY",)] <= memory[("TRIVIAL",)] * 0.9

    pattern = env.patterns(CATEGORY, sizes=(max(SIZES),))[0]
    benchmark.pedantic(
        lambda: env.run(pattern, "GREEDY", CATEGORY), rounds=1, iterations=1
    )
