"""Figures 6/7: throughput and memory vs *sequence* pattern size.

Paper shape: all methods degrade with pattern size, but the relative
gain of the JQPG-adapted methods over the CEP-native baselines grows
with size (the plan space explodes and good plans matter more).
"""

from __future__ import annotations

from repro.bench import format_series

from _common import ALL_ALGS, SIZES, mean_by

CATEGORY = "sequence"


def _series(results, metric):
    means = mean_by(results, metric, "algorithm", "pattern_size")
    return {
        algorithm: {
            size: means.get((algorithm, size)) for size in SIZES
        }
        for algorithm in ALL_ALGS
    }


def test_fig06_throughput_by_size(benchmark, env):
    results = env.sweep("by_type", (CATEGORY,), SIZES, ALL_ALGS)
    env.write(
        "fig06_sequence_throughput_by_size.txt",
        format_series(
            "Figure 6 — sequence patterns: throughput (events/s) by size",
            _series(results, "throughput"),
            SIZES,
        ),
    )
    pm = mean_by(results, "pm_created", "algorithm", "pattern_size")
    largest = max(SIZES)
    assert pm[("DP-LD", largest)] <= pm[("TRIVIAL", largest)] * 1.1

    pattern = env.patterns(CATEGORY, sizes=(largest,))[0]
    benchmark.pedantic(
        lambda: env.run(pattern, "GREEDY", CATEGORY), rounds=1, iterations=1
    )


def test_fig07_memory_by_size(benchmark, env):
    results = env.sweep("by_type", (CATEGORY,), SIZES, ALL_ALGS)
    env.write(
        "fig07_sequence_memory_by_size.txt",
        format_series(
            "Figure 7 — sequence patterns: peak memory units by size",
            _series(results, "peak_memory_units"),
            SIZES,
        ),
    )
    memory = mean_by(results, "peak_memory_units", "algorithm", "pattern_size")
    largest = max(SIZES)
    assert memory[("DP-LD", largest)] <= memory[("TRIVIAL", largest)] * 1.1

    pattern = env.patterns(CATEGORY, sizes=(largest,))[0]
    benchmark.pedantic(
        lambda: env.run(pattern, "DP-B", CATEGORY), rounds=1, iterations=1
    )
