"""Figure 23 (extension): adaptive re-optimization under statistics drift.

Not a figure of the source paper — Section 6.3 sketches the mechanism
and defers the design to the companion adaptivity paper [27]; this sweep
evaluates the PR 4 implementation (:mod:`repro.adaptive`): full online
statistics (sliding-window rates + engine-reported EWMA selectivities)
driving drift detection, and live plan migration on every switch.

The drifting stream has two phases and flips **both** statistic kinds
mid-stream:

* **rate flip** — phase 1 is A-scarce / C-heavy, phase 2 is A-heavy /
  C-scarce, so the plan built for phase 1 (buffer the then-rare A
  first) materializes an instance per event once phase 2 begins;
* **selectivity flip** — the ``v`` attribute distributions shift so the
  theta predicate ``a.v < b.v`` collapses from ~0.9 to ~0.1 pass rate,
  which only the engine-reported selectivity estimates can see (rates
  of the types involved stay constant).

Four configurations over the identical stream:

* ``static`` — the phase-1 plan, never revisited (the loss-free but
  slow baseline: every match, worst throughput in phase 2);
* ``adaptive-restart`` — drift-triggered replanning, restart-based
  swaps (the pre-PR-4 behaviour): fast plans, but in-flight partial
  matches die with every switch;
* ``adaptive-recompute`` — replanning + recompute-from-buffer
  migration;
* ``adaptive-parallel-drain`` — replanning + one-window old/new
  overlap with canonical-key dedup.

Acceptance (asserted in-bench, mirroring
``tests/test_adaptive_migration.py``): both migration policies produce
the *byte-identical* canonical match list of the static run — zero
matches lost — and (full mode) adaptive-recompute throughput is >= the
static plan's on this stream while ``adaptive-restart`` demonstrably
loses matches.

Since PR 5 the engines run the compiled + range-indexed hot path by
default, and that moves this figure's story: hash buckets and theta
bisects prune most of the extra candidates a stale join order produces,
so the *throughput* dividend of replanning on this workload drops below
the measurement floor (the PR-4 interpreted layer showed recompute at
1.24x the stale plan; see BENCH_fig23.json history).  What remains —
and what the assertions now pin — is the correctness story (stateful
migration stays byte-identical, restart still drops in-flight matches)
plus the *cost* of adapting: migration overhead is bounded, and the
``adaptive-recompute-gated`` row runs the PR-5 replan hysteresis
(``replan_cost_gate=0.1``), where one phase flip costs about one replan
instead of a drift-check-cadence cascade.

Set ``REPRO_BENCH_SMOKE=1`` for a seconds-scale smoke run (CI).
Writes ``fig23_adaptivity.txt`` and the machine-readable
``BENCH_fig23.json`` for the CI perf-trajectory artifact.
"""

from __future__ import annotations

import os
import random
import time

from repro import (
    AdaptiveController,
    DriftDetector,
    StatisticsCatalog,
    build_engines,
    canonical_order,
    parse_pattern,
    plan_pattern,
)
from repro.events import Event, Stream
from repro.parallel import match_records

from _common import BenchEnv

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
TIMING_ROUNDS = 1 if SMOKE else 2

EVENTS = 1200 if SMOKE else 8000
#: The drift hits early: phase 1 is just long enough to validate the
#: initial plan, then the (mis-planned) phase 2 dominates the run.
FLIP_AT = int(EVENTS * 0.15)
GAP = 0.02  # mean inter-arrival (seconds)
WINDOW = 2.0
CHECK_INTERVAL = 100 if SMOKE else 600

PATTERN = (
    "PATTERN SEQ(A a, B b, C c) "
    f"WHERE a.v < b.v AND b.v < c.v WITHIN {WINDOW}"
)

#: Per-phase generator parameters: type mix and ``v`` windows.  Phase 2
#: flips the A/C rates (the plan's cheap first step becomes its most
#: expensive) *and* shifts the distributions so the theta selectivities
#: collapse from ~0.78 to ~0.11 — enough to trip the selectivity
#: detector while matches keep forming (so a restart-based swap has
#: something to lose).
PHASES = (
    {"weights": {"A": 0.05, "B": 0.35, "C": 0.60},
     "v": {"A": (0.0, 0.6), "B": (0.2, 0.8), "C": (0.4, 1.0)}},
    {"weights": {"A": 0.58, "B": 0.38, "C": 0.04},
     "v": {"A": (0.55, 1.0), "B": (0.35, 0.75), "C": (0.15, 0.55)}},
)


def drifting_stream(seed: int = 23) -> Stream:
    rng = random.Random(seed)
    events, t = [], 0.0
    for index in range(EVENTS):
        phase = PHASES[0] if index < FLIP_AT else PHASES[1]
        t += rng.expovariate(1.0 / GAP)
        names, weights = zip(*phase["weights"].items())
        name = rng.choices(names, weights=weights)[0]
        lo, hi = phase["v"][name]
        events.append(Event(name, t, {"v": rng.uniform(lo, hi)}))
    return Stream(events)


def phase1_catalog() -> StatisticsCatalog:
    """Ground-truth phase-1 statistics: what a deployment would have
    measured before the drift."""
    rate = 1.0 / GAP
    phase = PHASES[0]
    return StatisticsCatalog(
        {name: rate * share for name, share in phase["weights"].items()},
        {("a", "b"): 0.7, ("b", "c"): 0.7},
    )


def detector() -> DriftDetector:
    return DriftDetector(threshold=0.5, selectivity_threshold=0.4)


def run_static(stream):
    planned = plan_pattern(PATTERN_OBJ, phase1_catalog(), algorithm="GREEDY")
    best, records = float("inf"), None
    for _ in range(TIMING_ROUNDS):
        engine = build_engines(planned)
        started = time.perf_counter()
        matches = engine.run(stream)
        best = min(best, time.perf_counter() - started)
        records = match_records(canonical_order(matches))
    return best, records, None


def run_adaptive(stream, migration, replan_cost_gate=0.0):
    best, records, controller = float("inf"), None, None
    for _ in range(TIMING_ROUNDS):
        controller = AdaptiveController(
            PATTERN_OBJ,
            phase1_catalog(),
            algorithm="GREEDY",
            migration=migration,
            check_interval=CHECK_INTERVAL,
            detector=detector(),
            horizon=WINDOW * 10,
            selectivity_alpha=0.2,
            replan_cost_gate=replan_cost_gate,
        )
        started = time.perf_counter()
        matches = controller.run(stream)
        best = min(best, time.perf_counter() - started)
        records = match_records(canonical_order(matches))
    return best, records, controller


PATTERN_OBJ = parse_pattern(PATTERN, name="fig23")

#: (label, runner, migration, replan_cost_gate).  The gated recompute
#: row shows the PR-5 hysteresis: one phase flip should cost roughly
#: one replan, not a drift-check-cadence cascade.
CONFIGS = (
    ("static", run_static, None, 0.0),
    ("adaptive-restart", run_adaptive, "restart", 0.0),
    ("adaptive-recompute", run_adaptive, "recompute", 0.0),
    ("adaptive-recompute-gated", run_adaptive, "recompute", 0.1),
    ("adaptive-parallel-drain", run_adaptive, "parallel-drain", 0.0),
)


def test_fig23_adaptivity(benchmark, env: BenchEnv):
    stream = drifting_stream()
    rows, results = [], {}
    for label, runner, migration, gate in CONFIGS:
        if migration is None:
            wall, records, controller = runner(stream)
        else:
            wall, records, controller = runner(stream, migration, gate)
        results[label] = (wall, records, controller)

    static_wall, static_records, _ = results["static"]
    payload_runs = []
    for label, runner, migration, gate in CONFIGS:
        wall, records, controller = results[label]
        lost = len(static_records) - len(records)
        metrics = controller.metrics if controller is not None else None
        rows.append(
            [
                label,
                len(records),
                lost,
                f"{EVENTS / wall:,.0f}",
                f"{static_wall / wall:.2f}x",
                controller.reoptimizations if controller else 0,
                controller.replans_suppressed if controller else 0,
                metrics.migrations if metrics else 0,
                metrics.pm_migrated if metrics else 0,
                metrics.matches_saved_by_migration if metrics else 0,
            ]
        )
        payload_runs.append(
            {
                "config": label,
                "events": EVENTS,
                "matches": len(records),
                "matches_lost": lost,
                "wall_s": wall,
                "events_per_s": EVENTS / wall,
                "speedup_vs_static": static_wall / wall,
                "reoptimizations": (
                    controller.reoptimizations if controller else 0
                ),
                "replans_suppressed": (
                    controller.replans_suppressed if controller else 0
                ),
                "replan_cost_gate": gate,
                "migrations": metrics.migrations if metrics else 0,
                "pm_migrated": metrics.pm_migrated if metrics else 0,
                "matches_saved_by_migration": (
                    metrics.matches_saved_by_migration if metrics else 0
                ),
                "selectivity_observations": (
                    metrics.selectivity_observations if metrics else 0
                ),
            }
        )

    # Acceptance: stateful migration is lossless — byte-identical
    # canonical match lists, in smoke and full mode alike.
    for label in (
        "adaptive-recompute",
        "adaptive-recompute-gated",
        "adaptive-parallel-drain",
    ):
        assert results[label][1] == static_records, (
            f"{label} diverged from the no-switch run"
        )

    env.write("fig23_adaptivity.txt", _format(rows))
    env.write_json(
        "BENCH_fig23.json",
        {
            "smoke": SMOKE,
            "events": EVENTS,
            "flip_at": FLIP_AT,
            "window": WINDOW,
            "pattern": PATTERN,
            "runs": payload_runs,
        },
    )

    if not SMOKE:
        # The drift must actually fire, restart must demonstrably lose
        # in-flight matches, and migration must not cost throughput
        # relative to the stale static plan.
        for label in (
            "adaptive-restart", "adaptive-recompute",
            "adaptive-parallel-drain",
        ):
            assert results[label][2].reoptimizations >= 1, label
        assert len(results["adaptive-restart"][1]) < len(static_records)
        # Hysteresis: the gated controller must keep adapting while
        # collapsing the mid-transition replan cascade.
        gated = results["adaptive-recompute-gated"][2]
        ungated = results["adaptive-recompute"][2]
        assert gated.reoptimizations >= 1
        assert gated.reoptimizations < ungated.reoptimizations
        assert gated.replans_suppressed >= 1
        # Migration overhead stays bounded: even twelve lossless
        # replays must not cost more than half the (accelerated)
        # static throughput on this drifting workload.
        recompute_wall = results["adaptive-recompute"][0]
        assert recompute_wall <= 2.0 * static_wall, (
            f"adaptive-recompute ({EVENTS / recompute_wall:,.0f} ev/s) "
            f"more than 2x slower than static "
            f"({EVENTS / static_wall:,.0f} ev/s)"
        )

    benchmark.pedantic(
        lambda: AdaptiveController(
            PATTERN_OBJ,
            phase1_catalog(),
            algorithm="GREEDY",
            migration="recompute",
            check_interval=CHECK_INTERVAL,
            detector=detector(),
        ).run(stream),
        rounds=1,
        iterations=1,
    )


def _format(rows) -> str:
    from repro.bench import format_table

    return format_table(
        (
            "config",
            "matches",
            "lost",
            "ev/s",
            "vs static",
            "reopts",
            "suppressed",
            "migrations",
            "pm migrated",
            "saved",
        ),
        rows,
        title=(
            "Figure 23 — adaptivity under rate + selectivity drift "
            "(migration policies byte-identical to the no-switch run)"
        ),
    )
