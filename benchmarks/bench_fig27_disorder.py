"""Figure 27 (extension): out-of-order ingestion and retraction churn.

Not a figure of the source paper — this sweep evaluates
:mod:`repro.streams.disorder`: the watermarked reorder buffer and the
retraction/update delta machinery wrapped around the compiled NFA
runtime.

Two modes:

* **disorder-sweep** — one keyed workload, shuffled with a seeded
  bounded-displacement jitter, fed through a :class:`DeltaEngine` at
  increasing ``max_delay`` bounds.  Reports sustained events/sec, the
  watermark-lag histogram (p50/p95/max of how far behind the frontier
  arrivals land), the reorder counter, and the throughput ratio
  against the plain ordered engine run (``speedup_vs_plain`` — the
  price of the buffer, machine-independent).
* **retraction-churn** — the ordered workload plus a seeded sprinkle
  of ``Retraction``/``Update`` corrections; reports corrected-stream
  throughput and the retraction counters.

Every configuration ends in the identity assertion: the net match
fingerprints of the disordered / corrected run must equal a clean
ordered run over the corrected stream — disorder tolerance is an
ingestion strategy, never a semantics change.

Set ``REPRO_BENCH_SMOKE=1`` for a seconds-scale smoke run (CI).
Writes ``fig27_disorder.txt`` and the machine-readable
``BENCH_fig27.json`` for the CI perf-trajectory artifact.
"""

from __future__ import annotations

import os
import random
import time

from repro import (
    DeltaEngine,
    Retraction,
    Update,
    build_engines,
    estimate_pattern_catalog,
    net_fingerprints,
    parse_pattern,
    plan_pattern,
)
from repro.events import Event, Stream

from _common import BenchEnv  # noqa: F401 — the env fixture's type

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
PATTERN = "PATTERN SEQ(A a, B b, C c) WHERE a.k = b.k AND b.k = c.k WITHIN {w}"

if SMOKE:
    EVENTS, KEYS, WINDOW = 800, 8, 1.0
    RETRACTIONS, UPDATES = 4, 2
else:
    EVENTS, KEYS, WINDOW = 6000, 50, 2.0
    RETRACTIONS, UPDATES = 25, 10

#: Disorder bounds swept, in stream-time units (mean event gap 0.05).
DELAYS = (0.0, 0.05, 0.15, 0.3)


def _events(seed: int = 27) -> list:
    rng = random.Random(seed)
    events, t = [], 0.0
    for _ in range(EVENTS):
        t += rng.uniform(0.01, 0.09)
        events.append(
            Event(
                rng.choice("ABC"),
                t,
                {"k": rng.randrange(KEYS), "v": rng.random()},
            )
        )
    return events


def _plan(events: list):
    pattern = parse_pattern(PATTERN.format(w=WINDOW))
    catalog = estimate_pattern_catalog(pattern, Stream(list(events)))
    return plan_pattern(pattern, catalog, algorithm="GREEDY")


def _shuffle_within(events: list, rng: random.Random, max_delay: float) -> list:
    jittered = [
        (event.timestamp + rng.uniform(0.0, max_delay * 0.95), i)
        for i, event in enumerate(events)
    ]
    return [events[i] for _, i in sorted(jittered)]


def _clean_fingerprints(build, events: list) -> list:
    engine = build()
    out = []
    for i, event in enumerate(events):
        out.extend(engine.process(event.with_seq(i)))
    out.extend(engine.finalize())
    return net_fingerprints(out)


def test_fig27_disorder(env):
    events = _events()
    planned = _plan(events)
    build = lambda: build_engines(planned)  # noqa: E731

    # The semantics + throughput baseline: plain ordered engine run.
    started = time.perf_counter()
    clean = _clean_fingerprints(build, events)
    plain_wall = time.perf_counter() - started
    plain_eps = len(events) / plain_wall if plain_wall > 0 else 0.0

    rows, runs = [], []
    for max_delay in DELAYS:
        shuffled = _shuffle_within(events, random.Random(271), max_delay)
        delta = DeltaEngine(build, max_delay=max_delay, late_policy="strict")
        started = time.perf_counter()
        delta.run(shuffled)
        wall = time.perf_counter() - started
        assert delta.net_fingerprints() == clean, (
            f"max_delay={max_delay}: disordered net matches diverge "
            "from the ordered run"
        )
        metrics = delta.metrics
        eps = len(events) / wall if wall > 0 else 0.0
        lag = metrics.watermark_lag
        rows.append(
            [
                f"{max_delay:g}",
                len(clean),
                f"{eps:,.0f}",
                f"{eps / plain_eps:.2f}" if plain_eps else "-",
                metrics.events_reordered,
                f"{lag.p95:.3f}",
                f"{lag.max:.3f}",
            ]
        )
        runs.append(
            {
                "mode": "disorder-sweep",
                "label": f"max_delay={max_delay:g}",
                "events": len(events),
                "window": WINDOW,
                "key_cardinality": KEYS,
                "matches": len(clean),
                "events_per_s": eps,
                "wall_s": wall,
                "speedup_vs_plain": eps / plain_eps if plain_eps else 1.0,
                "events_reordered": metrics.events_reordered,
                "watermark_lag_p50_s": lag.p50,
                "watermark_lag_p95_s": lag.p95,
                "watermark_lag_max_s": lag.max,
            }
        )

    # Retraction/update churn on the ordered stream: corrections drawn
    # from a seeded RNG, identity asserted against a clean run over the
    # corrected stream.
    rng = random.Random(272)
    retracted = set()
    while len(retracted) < RETRACTIONS:
        retracted.add(rng.randrange(len(events)))
    updated = {}
    while len(updated) < UPDATES:
        uid = rng.randrange(len(events))
        if uid in retracted or uid in updated:
            continue
        updated[uid] = {
            "k": rng.randrange(KEYS),
            "v": rng.random(),
        }
    corrected = [
        Event(e.type, e.timestamp, updated[i]) if i in updated else e
        for i, e in enumerate(events)
        if i not in retracted
    ]
    corrected_clean = _clean_fingerprints(build, corrected)

    delta = DeltaEngine(build)
    started = time.perf_counter()
    out = delta.process_batch(events)
    for uid in sorted(retracted):
        out.extend(delta.process(Retraction(uid)))
    for uid, payload in sorted(updated.items()):
        out.extend(delta.process(Update(uid, payload)))
    out.extend(delta.finalize())
    wall = time.perf_counter() - started
    assert net_fingerprints(out) == corrected_clean, (
        "retraction churn: incremental net matches diverge from the "
        "corrected-stream rerun"
    )
    metrics = delta.metrics
    churn_eps = len(events) / wall if wall > 0 else 0.0
    runs.append(
        {
            "mode": "retraction-churn",
            "label": f"{RETRACTIONS} retractions + {UPDATES} updates",
            "events": len(events),
            "window": WINDOW,
            "key_cardinality": KEYS,
            "matches": len(corrected_clean),
            "events_per_s": churn_eps,
            "wall_s": wall,
            "retractions_processed": metrics.retractions_processed,
            "matches_retracted": metrics.matches_retracted,
        }
    )

    header = (
        f"fig27 (extension): disorder tolerance "
        f"({EVENTS} events, {KEYS} keys, window {WINDOW:g}, "
        f"{'smoke' if SMOKE else 'full'})\n"
        f"plain ordered run: {plain_eps:,.0f} events/s\n\n"
        f"{'max_delay':>9} | {'matches':>7} | {'events/s':>10} | "
        f"{'vs plain':>8} | {'reordered':>9} | {'lag p95':>8} | "
        f"{'lag max':>8}\n" + "-" * 72
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{row[0]:>9} | {row[1]:>7} | {row[2]:>10} | {row[3]:>8} | "
            f"{row[4]:>9} | {row[5]:>8} | {row[6]:>8}"
        )
    lines.append(
        f"\nretraction churn: {RETRACTIONS} retractions + {UPDATES} "
        f"updates over {EVENTS} events -> {churn_eps:,.0f} events/s, "
        f"{metrics.matches_retracted} match retractions emitted"
    )
    env.write("fig27_disorder.txt", "\n".join(lines))
    env.write_json(
        "BENCH_fig27.json",
        {"smoke": SMOKE, "cpus": os.cpu_count(), "runs": runs},
    )
