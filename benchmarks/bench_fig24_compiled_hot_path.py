"""Figure 24 (extension): compiled kernels + range-indexed theta probes.

Not a figure of the source paper — this sweep evaluates the PR-5 hot
path: :mod:`repro.patterns.compile` predicate kernels (no per-candidate
bindings merge, no AST walk) and the sorted-run theta range probes of
:mod:`repro.engines.stores`, against the interpreted/linear seed
evaluation, on both single-query runtimes (tree and lazy NFA).

Three workload families over synthetic streams:

* **theta-heavy** — an order-based join chain ``a.v < b.v AND c.v <
  b.v`` with skewed per-type value distributions (low selectivity); the
  range run turns each sibling scan into a value bisect and the kernel
  removes the per-candidate dict merge;
* **equality-heavy** — the fig21 equi-join chain ``a.k = b.k = c.k``:
  hash buckets already prune candidates, so this family isolates the
  kernel win on bucket survivors;
* **mixed** — ``a.k = b.k AND a.v < b.v AND b.k = c.k``: hash bucket
  first, value bisect within (the composed access path).

Six modes per configuration: ``interpreted+linear`` (the baseline),
``interpreted+indexed``, ``compiled+linear``, ``compiled+indexed``
(PR-5 closure kernels), ``codegen`` (exec-generated kernel sources),
and ``codegen+batch`` (generated kernels + chunked ``run_batched``
with one grouped store-probe pass per same-variable run — the default
engine configuration driven batch-wise).  Match sequences of all four modes
are asserted identical for every run — kernels and range runs are
access/evaluation paths, never a semantics change.  At default scale
the theta-heavy rows must reach >= 2x combined speedup (asserted; smoke
runs only assert equivalence, timings at tiny scale are noise).

Set ``REPRO_BENCH_SMOKE=1`` for a seconds-scale smoke run (CI).
Writes ``fig24_compiled_hot_path.txt`` and the machine-readable
``BENCH_fig24.json`` for the CI perf-trajectory artifact.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.engines import NFAEngine, TreeEngine
from repro.events import Event, Stream
from repro.patterns import decompose, parse_pattern
from repro.plans import OrderPlan, TreePlan

from _common import BenchEnv

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
#: Mean inter-arrival gap (seconds); windows below are in the same unit.
GAP = 0.02
TIMING_ROUNDS = 1 if SMOKE else 3

THETA = "PATTERN SEQ(A a, B b, C c) WHERE a.v < b.v AND c.v < b.v WITHIN {w}"
EQUALITY = "PATTERN SEQ(A a, B b, C c) WHERE a.k = b.k AND b.k = c.k WITHIN {w}"
MIXED = (
    "PATTERN SEQ(A a, B b, C c) "
    "WHERE a.k = b.k AND a.v < b.v AND b.k = c.k WITHIN {w}"
)
TEMPLATES = {"theta": THETA, "equality": EQUALITY, "mixed": MIXED}

#: (indexed, compiled, codegen, batched) per reported mode, baseline
#: first.  ``compiled+indexed`` pins ``codegen=False`` — the PR-5
#: closure kernels — so the ``codegen`` and ``codegen+batch`` rows
#: report the exec-generated source and batch-probe wins against it.
MODES = (
    ("interp+linear", False, False, False, False),
    ("interp+indexed", True, False, False, False),
    ("compiled+linear", False, True, False, False),
    ("compiled+indexed", True, True, False, False),
    ("codegen", True, True, True, False),
    ("codegen+batch", True, True, True, True),
)

BATCH_SIZE = 512

#: (family, events, key cardinality, window).
if SMOKE:
    CONFIGS = (
        ("theta", 400, 8, 1.0),
        ("equality", 400, 8, 2.0),
        ("mixed", 400, 8, 2.0),
    )
else:
    CONFIGS = (
        ("theta", 3000, 20, 2.0),
        ("theta", 3000, 20, 6.0),
        ("equality", 4000, 20, 2.0),
        ("equality", 4000, 50, 6.0),
        ("mixed", 4000, 20, 4.0),
    )


def _stream(events_count: int, keys: int, seed: int = 13) -> Stream:
    """A/B/C events with an equality key ``k`` and a skewed theta
    payload ``v``: A and C values sit in the top 5% of the unit
    interval, B spans all of it, so ``a.v < b.v`` / ``c.v < b.v`` hold
    rarely (selective theta — the sweep measures join pruning, not
    match materialization)."""
    rng = random.Random(seed)
    events, t = [], 0.0
    for _ in range(events_count):
        t += rng.expovariate(1.0 / GAP)
        name = rng.choice("ABC")
        v = rng.random() if name == "B" else 0.95 + 0.05 * rng.random()
        events.append(
            Event(name, t, {"k": rng.randrange(keys), "v": v})
        )
    return Stream(events)


def _engine(
    text: str, runtime: str, indexed: bool, compiled: bool,
    codegen: bool = True,
):
    d = decompose(parse_pattern(text))
    order = OrderPlan(d.positive_variables)
    if runtime == "tree":
        return TreeEngine(
            d, TreePlan.left_deep(order), indexed=indexed,
            compiled=compiled, codegen=codegen,
        )
    return NFAEngine(
        d, order, indexed=indexed, compiled=compiled, codegen=codegen
    )


def _run_modes(text: str, stream: Stream, runtime: str):
    """Best-of-N walls per mode, rounds interleaved so machine drift
    hits every mode alike; plus match keys and metrics per mode."""
    best = {name: float("inf") for name, *_ in MODES}
    keys, metrics = {}, {}
    for _ in range(TIMING_ROUNDS):
        for name, indexed, compiled, codegen, batched in MODES:
            engine = _engine(text, runtime, indexed, compiled, codegen)
            started = time.perf_counter()
            if batched:
                matches = engine.run_batched(stream, batch_size=BATCH_SIZE)
            else:
                matches = engine.run(stream)
            best[name] = min(best[name], time.perf_counter() - started)
            keys[name] = [m.key() for m in matches]
            metrics[name] = engine.metrics
    return best, keys, metrics


# Six timed modes x three rounds outgrow the repo-wide 120s cap at
# full scale; smoke runs finish in seconds either way.
@pytest.mark.timeout(600)
def test_fig24_compiled_hot_path(benchmark, env: BenchEnv):
    rows, records = [], []
    for family, events_count, keys_card, window in CONFIGS:
        stream = _stream(events_count, keys_card)
        text = TEMPLATES[family].format(w=window)
        for runtime in ("tree", "nfa"):
            best, keys_by_mode, metrics = _run_modes(text, stream, runtime)
            base_keys = keys_by_mode["interp+linear"]
            # Acceptance: identical match sequences across all modes.
            for name, *_ in MODES:
                assert keys_by_mode[name] == base_keys, (
                    f"{family}/{runtime}/{name} diverges at "
                    f"K={keys_card} W={window}"
                )
            base_wall = best["interp+linear"]
            full = metrics["compiled+indexed"]
            speedup = lambda mode: (  # noqa: E731
                base_wall / best[mode] if best[mode] > 0 else 1.0
            )
            rows.append(
                [
                    family,
                    runtime,
                    keys_card,
                    window,
                    len(base_keys),
                    f"{events_count / base_wall:,.0f}",
                    f"{events_count / best['compiled+indexed']:,.0f}",
                    f"{speedup('interp+indexed'):.1f}x",
                    f"{speedup('compiled+linear'):.1f}x",
                    f"{speedup('compiled+indexed'):.1f}x",
                    f"{speedup('codegen'):.1f}x",
                    f"{speedup('codegen+batch'):.1f}x",
                    full.range_probes,
                    full.predicate_kernel_calls,
                ]
            )
            records.append(
                {
                    "family": family,
                    "runtime": runtime,
                    "key_cardinality": keys_card,
                    "window": window,
                    "events": events_count,
                    "matches": len(base_keys),
                    "interp_linear_wall_s": base_wall,
                    "interp_indexed_wall_s": best["interp+indexed"],
                    "compiled_linear_wall_s": best["compiled+linear"],
                    "compiled_indexed_wall_s": best["compiled+indexed"],
                    "speedup_indexed": speedup("interp+indexed"),
                    "speedup_compiled": speedup("compiled+linear"),
                    "speedup_full": speedup("compiled+indexed"),
                    "codegen_wall_s": best["codegen"],
                    "codegen_batch_wall_s": best["codegen+batch"],
                    "speedup_codegen": speedup("codegen"),
                    "speedup_codegen_batch": speedup("codegen+batch"),
                    "range_probes": full.range_probes,
                    "range_hits": full.range_hits,
                    "predicate_kernel_calls": full.predicate_kernel_calls,
                }
            )

    env.write("fig24_compiled_hot_path.txt", _format(rows))
    env.write_json("BENCH_fig24.json", {"smoke": SMOKE, "runs": records})

    if not SMOKE:
        for record in records:
            # Acceptance: >= 2x combined on every theta-heavy row, and
            # no mode regresses the baseline by more than 5% anywhere.
            if record["family"] == "theta":
                assert record["speedup_full"] >= 2.0, record
            assert record["speedup_full"] >= 0.95, record
            assert record["speedup_compiled"] >= 0.95, record
            # Codegen and codegen+batch must keep the integer-multiple
            # speedup over the interpreted baseline on every row, and
            # stay within noise of the PR-5 closure-kernel row (25%
            # relative floor — several configs have ~100ms walls, so a
            # ratio-of-ratios swings well past 15% run to run).
            for key in ("speedup_codegen", "speedup_codegen_batch"):
                assert record[key] >= 2.0, (key, record)
                assert record[key] >= 0.75 * record["speedup_full"], (
                    key,
                    record,
                )

    family, events_count, keys_card, window = CONFIGS[0]
    stream = _stream(events_count, keys_card)
    text = TEMPLATES[family].format(w=window)
    benchmark.pedantic(
        lambda: _engine(text, "tree", True, True).run(stream),
        rounds=1,
        iterations=1,
    )


def _format(rows) -> str:
    from repro.bench import format_table

    return format_table(
        (
            "workload",
            "runtime",
            "K",
            "window",
            "matches",
            "ev/s interp",
            "ev/s full",
            "idx only",
            "kern only",
            "combined",
            "codegen",
            "cg+batch",
            "range probes",
            "kernel calls",
        ),
        rows,
        title=(
            "Figure 24 — compiled predicate kernels + range-indexed "
            "theta probes vs. the interpreted/linear hot path "
            "(identical match sequences asserted)"
        ),
    )
