"""Ablation: allowing vs forbidding cross products in the DP search.

Section 4.3: classical relational optimizers exclude cross products;
CEP-native plan generators do not, and excluding them "might miss
cheaper plans" [38].  We sweep random conjunctive patterns with sparse
predicate graphs and compare DP plan costs with and without cartesian
steps — the restricted search must never win, and it loses strictly on
some instances (those where jumping across the query graph pays off).
"""

from __future__ import annotations

import random

from repro.bench import format_table
from repro.cost import ThroughputCostModel
from repro.optimizers import DPBushy, DPLeftDeep
from repro.patterns import decompose, parse_pattern
from repro.stats import PatternStatistics

MODEL = ThroughputCostModel()


def _problem(seed: int, size: int = 5):
    rng = random.Random(seed)
    names = [f"T{i}" for i in range(size)]
    spec = ", ".join(f"{n} v{i}" for i, n in enumerate(names))
    d = decompose(parse_pattern(f"PATTERN AND({spec}) WITHIN 3"))
    variables = d.positive_variables
    rates = {v: rng.uniform(0.2, 8.0) for v in variables}
    selectivities = {}
    # Sparse chain-ish graph: cross products become tempting.
    for first, second in zip(variables, variables[1:]):
        if rng.random() < 0.8:
            selectivities[frozenset((first, second))] = rng.uniform(
                0.01, 0.5
            )
    return d, PatternStatistics(variables, 3.0, rates, selectivities)


def test_ablation_cross_products(benchmark, env):
    rows = []
    wins = 0
    for seed in range(20):
        d, stats = _problem(seed)
        free = MODEL.order_cost(
            DPLeftDeep(allow_cartesian=True)
            .generate(d, stats, MODEL)
            .variables,
            stats,
        )
        restricted = MODEL.order_cost(
            DPLeftDeep(allow_cartesian=False)
            .generate(d, stats, MODEL)
            .variables,
            stats,
        )
        free_tree = MODEL.tree_cost(
            DPBushy(allow_cartesian=True).generate(d, stats, MODEL), stats
        )
        restricted_tree = MODEL.tree_cost(
            DPBushy(allow_cartesian=False).generate(d, stats, MODEL), stats
        )
        assert free <= restricted * (1 + 1e-9)
        assert free_tree <= restricted_tree * (1 + 1e-9)
        if free < restricted * 0.999 or free_tree < restricted_tree * 0.999:
            wins += 1
        rows.append(
            (
                seed,
                round(free, 2),
                round(restricted, 2),
                round(free_tree, 2),
                round(restricted_tree, 2),
            )
        )
    env.write(
        "ablation_cross_products.txt",
        format_table(
            ("seed", "DP-LD free", "DP-LD no-cart", "DP-B free",
             "DP-B no-cart"),
            rows,
            title=(
                "Ablation — plan cost with and without cross products "
                f"(free wins strictly on {wins}/20 instances)"
            ),
        ),
    )
    assert wins >= 1, "cross products should pay off on some instance"

    d, stats = _problem(3)
    benchmark.pedantic(
        lambda: DPBushy().generate(d, stats, MODEL), rounds=1, iterations=1
    )
