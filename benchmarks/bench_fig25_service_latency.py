"""Figure 25 (extension): always-on service runtime latency/throughput.

Not a figure of the source paper — this sweep evaluates
:mod:`repro.service`: one keyed workload streamed incrementally
through a persistent session on three execution paths:

* **serial** — the in-frame worker (workers=1), the latency floor of
  the streaming machinery itself;
* **session-pool** — a pinned multiprocess worker pool that persists
  across runs (plans shipped once, batches streamed, acks merged
  through the canonical-order safety frontier);
* **socket-loopback** — the same protocol spoken over TCP to a
  loopback shard server (``repro.service.shard_server``), the
  distributed deployment shape measured on one machine.

Each path reports sustained events/sec plus p50/p95/p99 detection
latency (arrival-to-emission, from the per-match histogram the session
records).  Match lists are asserted byte-identical (canonical order)
to the single-threaded **interpreted** engine run for every path —
the service runtime is an execution strategy, never a semantics
change.

Acceptance (full mode): the second run on an already-warm session is
>= 1.5x faster than a cold fork-per-run executor (pool spin-up and
plan shipping amortized away), and every path's match list is exact.

Set ``REPRO_BENCH_SMOKE=1`` for a seconds-scale smoke run (CI).
Writes ``fig25_service_latency.txt`` and the machine-readable
``BENCH_fig25.json`` for the CI perf-trajectory artifact.
"""

from __future__ import annotations

import os
import random
import time

from repro import (
    ParallelConfig,
    ParallelExecutor,
    build_engines,
    canonical_order,
    estimate_pattern_catalog,
    parse_pattern,
    plan_pattern,
)
from repro.events import Event, Stream
from repro.parallel import match_records
from repro.service import serve_in_thread

from _common import RESULTS_DIR, BenchEnv

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
GAP = 0.02
PATTERN = "PATTERN SEQ(A a, B b, C c) WHERE a.k = b.k AND b.k = c.k WITHIN {w}"

if SMOKE:
    EVENTS, KEYS, WINDOW, CHUNK = 600, 8, 1.5, 64
    REUSE_ROUNDS = 1
else:
    EVENTS, KEYS, WINDOW, CHUNK = 6000, 50, 4.0, 128
    REUSE_ROUNDS = 3


def _stream(seed: int = 25) -> Stream:
    rng = random.Random(seed)
    events, t = [], 0.0
    for _ in range(EVENTS):
        t += rng.expovariate(1.0 / GAP)
        events.append(
            Event(
                rng.choice("ABC"),
                t,
                {"k": rng.randrange(KEYS), "v": rng.random()},
            )
        )
    return Stream(events)


def _plan(stream: Stream):
    pattern = parse_pattern(PATTERN.format(w=WINDOW))
    catalog = estimate_pattern_catalog(pattern, stream)
    return plan_pattern(pattern, catalog, algorithm="GREEDY")


def _config(mode: str, shards=()) -> ParallelConfig:
    if mode == "serial":
        return ParallelConfig(
            workers=1, partitioner="key", backend="serial", batch_size=CHUNK
        )
    if mode == "session-pool":
        return ParallelConfig(
            workers=2,
            partitioner="key",
            backend="processes",
            batch_size=CHUNK,
        )
    return ParallelConfig(
        workers=2,
        partitioner="key",
        backend="socket",
        shards=shards,
        batch_size=CHUNK,
    )


def _observability_artifacts(planned, events: list, expected, server) -> None:
    """Traced socket replay of the workload, for the CI artifact.

    One more socket-loopback run with ``ParallelConfig(trace=True)``
    and a driver-side tracer attached, polled mid-stream over the
    STATS frame.  Writes three files to ``benchmarks/results/``:

    * ``fig25_trace.json`` — report-ready snapshot
      (``python -m repro.observe.report results/fig25_trace.json``);
    * ``fig25_trace.perfetto.json`` — Chrome ``trace_event`` form,
      loadable at https://ui.perfetto.dev;
    * ``fig25_metrics.prom`` — Prometheus text-exposition snapshot.

    The traced match list is asserted byte-identical to the untraced
    baseline — the artifact run doubles as the observation-neutrality
    check at service scale.
    """
    from repro.observe import (
        MetricsRegistry,
        Tracer,
        write_chrome_trace,
        write_json,
    )

    config = ParallelConfig(
        workers=2,
        partitioner="key",
        backend="socket",
        shards=[server.address],
        batch_size=CHUNK,
        trace=True,
    )
    tracer = Tracer()
    polled = None
    with ParallelExecutor(planned, config) as executor:
        session = executor.session()
        session.set_tracer(tracer)
        run = session.stream()
        matches = []
        for start in range(0, len(events), CHUNK):
            chunk = events[start : start + CHUNK]
            now = time.perf_counter()
            with tracer.span("feed", chunk=start // CHUNK):
                matches.extend(run.feed(chunk, arrivals=[now] * len(chunk)))
        polled = run.stats()  # mid-run STATS poll: full node counters
        matches.extend(run.finish())
        assert match_records(matches) == expected, (
            "traced socket run diverges from the untraced baseline"
        )
        snap = tracer.snapshot()
        nodes = polled["nodes"] or []
        payload = {
            "run_id": snap["run_id"],
            "spans": snap["spans"],
            "nodes": nodes,
            "metrics": run.metrics.summary() if run.metrics else None,
            "workers": [
                {"worker_id": w.get("worker_id"), "epoch": w.get("epoch")}
                for w in polled["workers"]
            ],
        }
        RESULTS_DIR.mkdir(exist_ok=True)
        write_json(payload, str(RESULTS_DIR / "fig25_trace.json"))
        write_chrome_trace(
            {"run_id": snap["run_id"], "spans": snap["spans"], "nodes": nodes},
            str(RESULTS_DIR / "fig25_trace.perfetto.json"),
        )
        registry = MetricsRegistry()
        if run.metrics is not None:
            registry.bind_metrics(run.metrics, source="socket-pool")
        hist = run.detection_latency
        registry.gauge(
            "fig25_detection_latency_p95_seconds",
            hist.p95,
            help="p95 arrival-to-emission latency of the traced run",
        )
        registry.gauge(
            "fig25_throughput_events_per_second",
            run.throughput,
            help="sustained input events/s of the traced run",
        )
        (RESULTS_DIR / "fig25_metrics.prom").write_text(registry.prometheus())


def _streamed_run(executor: ParallelExecutor, events: list):
    """One incremental run: chunked feeds with arrival stamps, so the
    session's detection-latency histogram is populated."""
    run = executor.session().stream()
    matches = []
    for start in range(0, len(events), CHUNK):
        chunk = events[start : start + CHUNK]
        now = time.perf_counter()
        matches.extend(run.feed(chunk, arrivals=[now] * len(chunk)))
    matches.extend(run.finish())
    return matches, run


def test_fig25_service_latency(benchmark, env: BenchEnv):
    stream = _stream()
    events = list(stream)
    planned = _plan(stream)

    # The semantics baseline: single-threaded *interpreted* engines.
    baseline = build_engines(planned, compiled=False)
    expected = match_records(canonical_order(baseline.run(stream)))

    server = serve_in_thread()  # 127.0.0.1, ephemeral port
    rows, runs = [], []
    try:
        for mode in ("serial", "session-pool", "socket-loopback"):
            config = _config(mode, shards=[server.address])
            with ParallelExecutor(planned, config) as executor:
                _streamed_run(executor, events)  # warm the pool
                matches, run = _streamed_run(executor, events)
                assert match_records(matches) == expected, (
                    f"{mode} diverges from the interpreted serial run"
                )
                hist = run.detection_latency
                events_per_s = (
                    len(events) / run.wall_seconds
                    if run.wall_seconds > 0
                    else 0.0
                )
                rows.append(
                    [
                        mode,
                        config.workers,
                        len(matches),
                        f"{events_per_s:,.0f}",
                        f"{hist.p50 * 1e3:.2f}",
                        f"{hist.p95 * 1e3:.2f}",
                        f"{hist.p99 * 1e3:.2f}",
                    ]
                )
                runs.append(
                    {
                        "mode": mode,
                        "workers": config.workers,
                        "events": len(events),
                        "matches": len(matches),
                        "events_per_s": events_per_s,
                        "wall_s": run.wall_seconds,
                        "latency_p50_s": hist.p50,
                        "latency_p95_s": hist.p95,
                        "latency_p99_s": hist.p99,
                        "latency_mean_s": hist.mean,
                        "latency_samples": len(hist),
                    }
                )

        # Observability artifacts (trace + Prometheus snapshot) from a
        # traced replay of the same workload; asserts byte-identity.
        _observability_artifacts(planned, events, expected, server)

        # Session reuse vs fork-per-run: a cold executor pays pool
        # spin-up (fork + INIT + plan shipping) inside the measured
        # wall; a warm session pays none of it.  Measured on a short
        # run — the regime sessions exist for: frequent small runs
        # whose wall is otherwise dominated by per-run fixed costs.
        reuse_stream = Stream(events[:300])
        pool_config = _config("session-pool")
        cold = float("inf")
        for _ in range(REUSE_ROUNDS):
            started = time.perf_counter()
            executor = ParallelExecutor(planned, pool_config)
            executor.run(reuse_stream)
            cold = min(cold, time.perf_counter() - started)
            executor.close()
        warm = float("inf")
        with ParallelExecutor(planned, pool_config) as executor:
            executor.run(reuse_stream)  # first run starts the pool
            for _ in range(REUSE_ROUNDS):
                started = time.perf_counter()
                executor.run(reuse_stream)
                warm = min(warm, time.perf_counter() - started)
        reuse = cold / warm if warm > 0 else 1.0
    finally:
        server.close()

    env.write("fig25_service_latency.txt", _format(rows, reuse))
    env.write_json(
        "BENCH_fig25.json",
        {
            "smoke": SMOKE,
            "cpus": os.cpu_count(),
            "runs": runs,
            "session_reuse": {
                "cold_fork_per_run_s": cold,
                "warm_second_run_s": warm,
                "speedup": reuse,
            },
        },
    )

    if not SMOKE:
        # Acceptance: pool reuse beats fork-per-run by >= 1.5x.
        assert reuse >= 1.5, (cold, warm, reuse)

    benchmark.pedantic(
        lambda: _streamed_run(
            ParallelExecutor(planned, _config("serial")), events
        ),
        rounds=1,
        iterations=1,
    )


def _format(rows, reuse: float) -> str:
    from repro.bench import format_table

    return format_table(
        (
            "path",
            "workers",
            "matches",
            "events/s",
            "p50 ms",
            "p95 ms",
            "p99 ms",
        ),
        rows,
        title=(
            "Figure 25 — always-on service runtime "
            "(byte-identical to the interpreted serial run; "
            f"session reuse {reuse:.1f}x over fork-per-run)"
        ),
    )
