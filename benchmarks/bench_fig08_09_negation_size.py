"""Figures 8/9: throughput and memory vs *negation* pattern size.

Negation patterns are sequences with one forbidden inner event.  The
positive part has one fewer participant, so absolute PM counts are lower
than for pure sequences; the paper still finds the JQPG-adapted plans
ahead, with the tree-based family strongest (the negation check prunes
instances before they propagate upward).
"""

from __future__ import annotations

from repro.bench import format_series

from _common import ALL_ALGS, SIZES, TREE_ALGS, mean_by

CATEGORY = "negation"


def _series(results, metric):
    means = mean_by(results, metric, "algorithm", "pattern_size")
    return {
        algorithm: {size: means.get((algorithm, size)) for size in SIZES}
        for algorithm in ALL_ALGS
    }


def test_fig08_throughput_by_size(benchmark, env):
    results = env.sweep("by_type", (CATEGORY,), SIZES, ALL_ALGS)
    env.write(
        "fig08_negation_throughput_by_size.txt",
        format_series(
            "Figure 8 — negation patterns: throughput (events/s) by size",
            _series(results, "throughput"),
            SIZES,
        ),
    )
    # Matches must agree across algorithms — negation handling is
    # plan-independent (Section 5.3).
    matches = mean_by(results, "matches", "algorithm", "pattern_size")
    for size in SIZES:
        values = {matches[(a, size)] for a in ALL_ALGS}
        assert len(values) == 1

    pattern = env.patterns(CATEGORY, sizes=(max(SIZES),))[0]
    benchmark.pedantic(
        lambda: env.run(pattern, "DP-LD", CATEGORY), rounds=1, iterations=1
    )


def test_fig09_memory_by_size(benchmark, env):
    results = env.sweep("by_type", (CATEGORY,), SIZES, ALL_ALGS)
    env.write(
        "fig09_negation_memory_by_size.txt",
        format_series(
            "Figure 9 — negation patterns: peak memory units by size",
            _series(results, "peak_memory_units"),
            SIZES,
        ),
    )
    memory = mean_by(results, "peak_memory_units", "algorithm")
    # The optimal plans never use substantially more memory than the
    # native baselines.
    assert memory[("DP-LD",)] <= memory[("TRIVIAL",)] * 1.15
    assert min(memory[(a,)] for a in TREE_ALGS) <= memory[("TRIVIAL",)] * 1.15

    pattern = env.patterns(CATEGORY, sizes=(max(SIZES),))[0]
    benchmark.pedantic(
        lambda: env.run(pattern, "ZSTREAM-ORD", CATEGORY),
        rounds=1,
        iterations=1,
    )
