"""Perf-trajectory regression gate over the ``BENCH_*.json`` results.

Every figure bench writes a machine-readable ``BENCH_figNN.json`` next
to its text table (``benchmarks/results/``).  This script diffs those
against the committed baselines in ``benchmarks/baselines/`` and fails
(exit 1) when any throughput metric regresses by more than the
tolerance (default 25%):

* **ratio metrics** (``speedup*`` keys, ``session_reuse.speedup``) are
  machine-independent and compared directly;
* **absolute metrics** (``events_per_s``; ``events / *_wall_s`` derived
  where a record carries both) depend on the host, so a fresh baseline
  belongs with any hardware change (``--update`` rewrites them).

Scale-aware gating: smoke runs (``REPRO_BENCH_SMOKE=1``) have
millisecond walls where host load alone swings absolute throughput by
±40%, so when both payloads are smoke only the ratio metrics gate (at
``max(tolerance, SMOKE_RATIO_TOLERANCE)``) and absolute metrics are
reported informationally.  Full-scale runs gate every metric at the
tolerance.

Runs are paired by their configuration identity (mode/family/runtime/
workers/...), so reordering records or adding new configurations never
trips the gate — new runs are reported informationally.  A baseline
and a result taken at different scales (``smoke`` flag mismatch) are
incomparable and skipped with a warning.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py
    PYTHONPATH=src python benchmarks/check_regression.py --tolerance 0.4
    PYTHONPATH=src python benchmarks/check_regression.py --update
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

HERE = Path(__file__).parent
DEFAULT_BASELINES = HERE / "baselines"
DEFAULT_RESULTS = HERE / "results"

#: Fail when current < (1 - tolerance) * baseline for any metric.
DEFAULT_TOLERANCE = 0.25

#: Minimum tolerance applied to ratio metrics of smoke-scale runs —
#: even machine-independent speedups are noisy on millisecond walls.
SMOKE_RATIO_TOLERANCE = 0.5

#: Record fields that identify *which* run a record measures (never
#: measured quantities) — present ones form the pairing key.
IDENTITY_FIELDS = (
    "mode",
    "family",
    "runtime",
    "label",
    "workers",
    "queries",
    "events",
    "key_cardinality",
    "window",
    "indexed",
    "partitioner",
    "backend",
)


def run_key(record: dict) -> Tuple:
    """Stable identity of one run record, for baseline pairing."""
    return tuple(
        (field, record[field])
        for field in IDENTITY_FIELDS
        if field in record
    )


def throughput_metrics(record: dict) -> Dict[str, float]:
    """Higher-is-better throughput metrics of one run record.

    ``speedup*`` ratios come through as-is; ``events_per_s`` directly;
    and every ``*_wall_s`` wall time in a record that also reports its
    ``events`` count is folded into an ``events_per_s[...]`` rate so
    wall-time-only benches (fig20/21/24) still gate on throughput.
    """
    metrics: Dict[str, float] = {}
    events = record.get("events")
    for name, value in record.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if name.startswith("speedup") or name == "events_per_s":
            metrics[name] = float(value)
        elif name.endswith("_wall_s") and events and value > 0:
            metrics[f"events_per_s[{name[: -len('_wall_s')]}]"] = (
                float(events) / float(value)
            )
    return metrics


def _records(payload: dict) -> List[Tuple[Tuple, dict]]:
    """(key, record) pairs for a BENCH payload: every entry of the
    ``runs`` list, plus any metric-bearing top-level section (e.g.
    fig25's ``session_reuse``) keyed by its section name."""
    pairs: List[Tuple[Tuple, dict]] = []
    for record in payload.get("runs", ()):
        if isinstance(record, dict):
            pairs.append((run_key(record), record))
    for name, section in payload.items():
        if name == "runs" or not isinstance(section, dict):
            continue
        if any(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in section.values()
        ):
            pairs.append(((("section", name),), section))
    return pairs


def compare(
    baseline: dict, current: dict, tolerance: float = DEFAULT_TOLERANCE
) -> Tuple[List[dict], List[str]]:
    """Diff one baseline payload against its current counterpart.

    Returns ``(regressions, notes)``: each regression dict carries the
    run key, metric name, both values and the observed drop; notes are
    informational lines (new/missing runs, metric-set drift).
    """
    regressions: List[dict] = []
    notes: List[str] = []
    if bool(baseline.get("smoke")) != bool(current.get("smoke")):
        notes.append(
            "smoke-flag mismatch (baseline "
            f"smoke={bool(baseline.get('smoke'))}, current "
            f"smoke={bool(current.get('smoke'))}): scales are "
            "incomparable, skipped"
        )
        return regressions, notes
    smoke = bool(baseline.get("smoke"))
    skipped_absolute = 0
    base_runs = dict(_records(baseline))
    curr_runs = dict(_records(current))
    for key, base_record in base_runs.items():
        curr_record = curr_runs.get(key)
        if curr_record is None:
            notes.append(f"baselined run missing from results: {key}")
            continue
        base_metrics = throughput_metrics(base_record)
        curr_metrics = throughput_metrics(curr_record)
        for name, base_value in sorted(base_metrics.items()):
            curr_value = curr_metrics.get(name)
            if curr_value is None:
                notes.append(f"metric {name} gone from {key}")
                continue
            if base_value <= 0:
                continue
            is_ratio = name.startswith("speedup")
            if smoke and not is_ratio:
                skipped_absolute += 1
                continue
            bound = max(tolerance, SMOKE_RATIO_TOLERANCE) if smoke else tolerance
            drop = 1.0 - curr_value / base_value
            if drop > bound:
                regressions.append(
                    {
                        "key": key,
                        "metric": name,
                        "baseline": base_value,
                        "current": curr_value,
                        "drop": drop,
                        "tolerance": bound,
                    }
                )
    if skipped_absolute:
        notes.append(
            f"smoke scale: {skipped_absolute} absolute throughput "
            "metrics reported informationally, not gated (ms-scale "
            "walls; ratios still gate)"
        )
    for key in curr_runs:
        if key not in base_runs:
            notes.append(f"new run (no baseline yet): {key}")
    return regressions, notes


def _key_text(key: Tuple) -> str:
    return " ".join(f"{field}={value}" for field, value in key) or "(run)"


def check(
    baselines_dir: Path,
    results_dir: Path,
    tolerance: float = DEFAULT_TOLERANCE,
    out=None,
) -> int:
    """Gate every baselined BENCH file; returns the process exit code."""
    out = out if out is not None else sys.stdout
    baseline_files = sorted(baselines_dir.glob("BENCH_*.json"))
    if not baseline_files:
        print(f"no baselines under {baselines_dir} — nothing to gate", file=out)
        return 0
    failed = False
    for baseline_path in baseline_files:
        result_path = results_dir / baseline_path.name
        name = baseline_path.name
        if not result_path.exists():
            print(f"{name}: SKIP (no current result — bench not run)", file=out)
            continue
        baseline = json.loads(baseline_path.read_text())
        current = json.loads(result_path.read_text())
        regressions, notes = compare(baseline, current, tolerance)
        for note in notes:
            print(f"{name}: note: {note}", file=out)
        if regressions:
            failed = True
            for item in regressions:
                print(
                    f"{name}: REGRESSION {item['metric']} "
                    f"{item['baseline']:,.1f} -> {item['current']:,.1f} "
                    f"(-{item['drop']:.0%}, tolerance "
                    f"{item['tolerance']:.0%}) "
                    f"[{_key_text(item['key'])}]",
                    file=out,
                )
        else:
            print(f"{name}: OK (within {tolerance:.0%} of baseline)", file=out)
    if failed:
        print(
            "\nthroughput regression beyond tolerance — if this follows a "
            "deliberate trade or a hardware change, refresh baselines with "
            "--update",
            file=out,
        )
    return 1 if failed else 0


def update(baselines_dir: Path, results_dir: Path, out=None) -> int:
    """Copy current BENCH results over the committed baselines."""
    out = out if out is not None else sys.stdout
    baselines_dir.mkdir(parents=True, exist_ok=True)
    copied = 0
    for result_path in sorted(results_dir.glob("BENCH_*.json")):
        shutil.copyfile(result_path, baselines_dir / result_path.name)
        print(f"baseline refreshed: {result_path.name}", file=out)
        copied += 1
    if not copied:
        print(f"no BENCH_*.json under {results_dir} — run the benches", file=out)
        return 1
    return 0


def main(argv: Optional[Iterable[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baselines",
        type=Path,
        default=DEFAULT_BASELINES,
        help="committed baseline dir (default benchmarks/baselines)",
    )
    parser.add_argument(
        "--results",
        type=Path,
        default=DEFAULT_RESULTS,
        help="current results dir (default benchmarks/results)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="maximum tolerated fractional drop (default 0.25)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite baselines from the current results instead of gating",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.update:
        return update(args.baselines, args.results)
    return check(args.baselines, args.results, args.tolerance)


if __name__ == "__main__":
    raise SystemExit(main())
