"""Figure 5: mean memory consumption per pattern type (lower is better).

Memory is reported as peak live partial matches plus buffered events
(the paper's JVM peak is dominated by exactly these structures; see
DESIGN.md "Substitutions").  Paper shape: JQPG-adapted plans use less
memory than the native baselines; DP-B is the most frugal tree method.
"""

from __future__ import annotations

from repro.bench import format_table

from _common import ALL_ALGS, CATEGORIES, SIZES, mean_by


def test_fig05_memory_by_type(benchmark, env):
    results = env.sweep("by_type", CATEGORIES, SIZES, ALL_ALGS)
    means = mean_by(results, "peak_memory_units", "algorithm", "category")
    rows = []
    for algorithm in ALL_ALGS:
        row = [algorithm]
        for category in CATEGORIES:
            row.append(f"{means[(algorithm, category)]:,.0f}")
        rows.append(row)
    env.write(
        "fig05_memory_by_type.txt",
        format_table(
            ("algorithm",) + CATEGORIES,
            rows,
            title=(
                "Figure 5 — mean peak memory (partial matches + buffered "
                "events) by pattern type"
            ),
        ),
    )

    # Shape: the optimal-plan methods hold no more live PMs than the
    # native baselines (per-category slack for estimation noise, strict
    # on the overall mean).
    peak = mean_by(results, "peak_partial_matches", "algorithm", "category")
    for category in CATEGORIES:
        assert (
            peak[("DP-LD", category)]
            <= max(
                peak[("TRIVIAL", category)], peak[("EFREQ", category)]
            ) * 1.3
        )
        assert peak[("DP-B", category)] <= peak[("ZSTREAM", category)] * 1.3
    overall = mean_by(results, "peak_partial_matches", "algorithm")
    assert overall[("DP-LD",)] <= overall[("TRIVIAL",)] * 1.05
    assert overall[("DP-B",)] <= overall[("ZSTREAM",)] * 1.05

    pattern = env.patterns("conjunction", sizes=(4,))[0]
    benchmark.pedantic(
        lambda: env.run(pattern, "DP-B", "conjunction"),
        rounds=1,
        iterations=1,
    )
