"""Figures 10/11: throughput and memory vs *conjunction* pattern size.

Conjunctions are where plan choice matters most (the paper's largest
gain: 2.7x for DP-LD over EFREQ): with no temporal ordering to prune
prefixes, a bad order multiplies every live event count.  TRIVIAL, which
ignores both rates and selectivities, collapses first as size grows.
"""

from __future__ import annotations

from repro.bench import format_series

from _common import ALL_ALGS, SIZES, mean_by

CATEGORY = "conjunction"


def _series(results, metric):
    means = mean_by(results, metric, "algorithm", "pattern_size")
    return {
        algorithm: {size: means.get((algorithm, size)) for size in SIZES}
        for algorithm in ALL_ALGS
    }


def test_fig10_throughput_by_size(benchmark, env):
    results = env.sweep("by_type", (CATEGORY,), SIZES, ALL_ALGS)
    env.write(
        "fig10_conjunction_throughput_by_size.txt",
        format_series(
            "Figure 10 — conjunction patterns: throughput (events/s) by size",
            _series(results, "throughput"),
            SIZES,
        ),
    )
    # The signature conjunction result: cost-based orders crush TRIVIAL.
    pm = mean_by(results, "pm_created", "algorithm")
    assert pm[("DP-LD",)] <= pm[("TRIVIAL",)] * 0.8
    assert pm[("GREEDY",)] <= pm[("TRIVIAL",)] * 0.8

    pattern = env.patterns(CATEGORY, sizes=(max(SIZES),))[0]
    benchmark.pedantic(
        lambda: env.run(pattern, "DP-LD", CATEGORY), rounds=1, iterations=1
    )


def test_fig11_memory_by_size(benchmark, env):
    results = env.sweep("by_type", (CATEGORY,), SIZES, ALL_ALGS)
    env.write(
        "fig11_conjunction_memory_by_size.txt",
        format_series(
            "Figure 11 — conjunction patterns: peak memory units by size",
            _series(results, "peak_memory_units"),
            SIZES,
        ),
    )
    memory = mean_by(results, "peak_memory_units", "algorithm", "pattern_size")
    largest = max(SIZES)
    # The memory gap grows with size (Figure 11's divergence).
    assert memory[("DP-LD", largest)] <= memory[("TRIVIAL", largest)] * 0.8

    pattern = env.patterns(CATEGORY, sizes=(largest,))[0]
    benchmark.pedantic(
        lambda: env.run(pattern, "DP-B", CATEGORY), rounds=1, iterations=1
    )
