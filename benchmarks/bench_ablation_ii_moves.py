"""Ablation: iterative-improvement move sets and restarts.

The paper (after [47]) equips II with two move types — swap and
3-cycle.  This ablation quantifies what each contributes: local search
with the combined neighborhood must reach local minima at least as good
as either move type alone (it searches a superset), and random restarts
monotonically improve II-RANDOM.  Costs only; no stream execution.
"""

from __future__ import annotations

import random

from repro.bench import format_table
from repro.cost import ThroughputCostModel
from repro.optimizers import IterativeImprovementRandom
from repro.patterns import decompose, parse_pattern
from repro.stats import PatternStatistics

MODEL = ThroughputCostModel()


def _problem(seed: int, size: int = 7):
    rng = random.Random(seed)
    names = [f"T{i}" for i in range(size)]
    spec = ", ".join(f"{n} v{i}" for i, n in enumerate(names))
    d = decompose(parse_pattern(f"PATTERN AND({spec}) WITHIN 3"))
    variables = d.positive_variables
    rates = {v: rng.uniform(0.2, 8.0) for v in variables}
    selectivities = {}
    for i, first in enumerate(variables):
        for second in variables[i + 1:]:
            if rng.random() < 0.4:
                selectivities[frozenset((first, second))] = rng.uniform(
                    0.02, 0.8
                )
    return d, PatternStatistics(variables, 3.0, rates, selectivities)


def _cost(d, stats, **kwargs):
    generator = IterativeImprovementRandom(seed=0, **kwargs)
    plan = generator.generate(d, stats, MODEL)
    return MODEL.order_cost(plan.variables, stats)


def test_ablation_ii_moves_and_restarts(benchmark, env):
    rows = []
    swap_total = cycle_total = both_total = restart_total = 0.0
    for seed in range(12):
        d, stats = _problem(seed)
        swap_only = _cost(d, stats, moves=("swap",))
        cycle_only = _cost(d, stats, moves=("cycle",))
        both = _cost(d, stats, moves=("swap", "cycle"))
        restarts = _cost(d, stats, moves=("swap", "cycle"), restarts=5)
        assert restarts <= both * (1 + 1e-9)
        swap_total += swap_only
        cycle_total += cycle_only
        both_total += both
        restart_total += restarts
        rows.append(
            (
                seed,
                round(swap_only, 2),
                round(cycle_only, 2),
                round(both, 2),
                round(restarts, 2),
            )
        )
    env.write(
        "ablation_ii_moves.txt",
        format_table(
            ("seed", "swap only", "cycle only", "swap+cycle",
             "swap+cycle x5 restarts"),
            rows,
            title="Ablation — II local-minimum cost by move set",
        ),
    )
    # On average the richer neighborhood and restarts help.
    assert both_total <= swap_total * (1 + 1e-9)
    assert restart_total <= both_total * (1 + 1e-9)

    d, stats = _problem(0)
    benchmark.pedantic(
        lambda: _cost(d, stats, restarts=3), rounds=1, iterations=1
    )
