"""Figure 21 (extension): indexed vs. linear partial-match stores.

Not a figure of the source paper — this sweep evaluates the
:mod:`repro.engines.stores` subsystem: hash equi-join probes plus
watermark-gated window expiry, against the seed's linear scans
(``indexed=False``), on both runtimes (tree and lazy NFA).

Two workload families over the same synthetic stream:

* **equality-heavy** — a three-way equi-join chain ``a.k = b.k = c.k``;
  the index replaces each O(store) sibling scan with one hash bucket,
  so throughput should grow roughly with the key cardinality;
* **pure theta** — ``a.v < b.v < c.v`` has no equality cross-predicates,
  so no hash index is built; this guards the "no regression" criterion
  (the bisect expiry and trigger bounds must not cost anything
  noticeable).  Since PR 5 the indexed mode additionally builds a
  sorted-run range index here, so the row may show a genuine speedup.

Both modes run with ``compiled=False``: this figure isolates the store
access-path win at the interpreted evaluation layer it was calibrated
against; the combined compiled+indexed measurement is fig24
(``bench_fig24_compiled_hot_path.py``).

Match sequences of the two modes are asserted identical for every run —
the store is an access path, never a semantics change.  At default
scale the table must show >= 5x indexed throughput on the equality
workload and <= 5% slowdown on theta (asserted; smoke runs only assert
equivalence, timings at tiny scale are noise).

Set ``REPRO_BENCH_SMOKE=1`` for a seconds-scale smoke run (CI).
Writes ``fig21_indexed_stores.txt`` and the machine-readable
``BENCH_fig21.json`` for the CI perf-trajectory artifact.
"""

from __future__ import annotations

import os
import random
import time

from repro.engines import NFAEngine, TreeEngine
from repro.events import Event, Stream
from repro.patterns import decompose, parse_pattern
from repro.plans import OrderPlan, TreePlan

from _common import BenchEnv

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
#: Mean inter-arrival gap (seconds); windows below are in the same unit.
GAP = 0.02
TIMING_ROUNDS = 1 if SMOKE else 3

EQUALITY = "PATTERN SEQ(A a, B b, C c) WHERE a.k = b.k AND b.k = c.k WITHIN {w}"
THETA = "PATTERN SEQ(A a, B b, C c) WHERE a.v < b.v AND b.v < c.v WITHIN {w}"

#: (family, events, key cardinality, window).  The equality sweep covers
#: selectivity (1/K) x window backlog; the theta family has no equality
#: cross-predicates (so no index is built) and guards the no-regression
#: criterion — kept at one modest config because its low-selectivity
#: joins emit tens of thousands of matches, which dominates both modes
#: equally and tells us nothing more at larger scale.
if SMOKE:
    CONFIGS = (
        ("equality", 400, 8, 2.0),
        ("theta", 300, 8, 1.0),
    )
else:
    CONFIGS = (
        ("equality", 4000, 20, 2.0),
        ("equality", 4000, 50, 2.0),
        ("equality", 4000, 20, 6.0),
        ("equality", 4000, 50, 6.0),
        ("theta", 1500, 25, 2.0),
    )


def _stream(events_count: int, keys: int, seed: int = 11) -> Stream:
    """A/B/C events with an equality key ``k`` and a theta payload ``v``."""
    rng = random.Random(seed)
    events, t = [], 0.0
    for _ in range(events_count):
        t += rng.expovariate(1.0 / GAP)
        events.append(
            Event(
                rng.choice("ABC"),
                t,
                {"k": rng.randrange(keys), "v": rng.random()},
            )
        )
    return Stream(events)


def _engine(text: str, runtime: str, indexed: bool):
    d = decompose(parse_pattern(text))
    order = OrderPlan(d.positive_variables)
    if runtime == "tree":
        return TreeEngine(
            d, TreePlan.left_deep(order), indexed=indexed, compiled=False
        )
    return NFAEngine(d, order, indexed=indexed, compiled=False)


def _run_pair(text: str, stream: Stream, runtime: str):
    """Best-of-N walls for linear and indexed, rounds interleaved so
    machine drift hits both modes alike; plus match keys and metrics."""
    best = {False: float("inf"), True: float("inf")}
    keys, metrics = {}, {}
    for _ in range(TIMING_ROUNDS):
        for indexed in (False, True):
            engine = _engine(text, runtime, indexed)
            started = time.perf_counter()
            matches = engine.run(stream)
            best[indexed] = min(best[indexed], time.perf_counter() - started)
            keys[indexed] = [m.key() for m in matches]
            metrics[indexed] = engine.metrics
    return best, keys, metrics


def test_fig21_indexed_stores(benchmark, env: BenchEnv):
    rows, records = [], []
    for family, events_count, keys, window in CONFIGS:
        stream = _stream(events_count, keys)
        template = EQUALITY if family == "equality" else THETA
        text = template.format(w=window)
        for runtime in ("tree", "nfa"):
            best, keys_by_mode, metrics = _run_pair(text, stream, runtime)
            lin_wall, lin_keys = best[False], keys_by_mode[False]
            idx_wall, idx_keys = best[True], keys_by_mode[True]
            idx_metrics = metrics[True]
            # Acceptance: identical match sequences, always.
            assert idx_keys == lin_keys, (
                f"{family}/{runtime} diverges at K={keys} W={window}"
            )
            speedup = lin_wall / idx_wall if idx_wall > 0 else 1.0
            probes = idx_metrics.index_probes
            hit_rate = idx_metrics.index_hits / probes if probes else 0.0
            rows.append(
                [
                    family,
                    runtime,
                    keys,
                    window,
                    len(idx_keys),
                    f"{events_count / lin_wall:,.0f}",
                    f"{events_count / idx_wall:,.0f}",
                    f"{speedup:.1f}x",
                    f"{hit_rate:.0%}",
                    idx_metrics.pm_expired,
                ]
            )
            records.append(
                {
                    "family": family,
                    "runtime": runtime,
                    "key_cardinality": keys,
                    "window": window,
                    "events": events_count,
                    "matches": len(idx_keys),
                    "linear_wall_s": lin_wall,
                    "indexed_wall_s": idx_wall,
                    "speedup": speedup,
                    "index_probes": probes,
                    "index_hit_rate": hit_rate,
                    "pm_expired": idx_metrics.pm_expired,
                }
            )

    env.write(
        "fig21_indexed_stores.txt",
        _format(rows),
    )
    env.write_json("BENCH_fig21.json", {"smoke": SMOKE, "runs": records})

    if not SMOKE:
        # Acceptance: >= 5x on every equality-heavy configuration, and
        # no >5% slowdown where no index applies (best-of-3 timings).
        for record in records:
            if record["family"] == "equality":
                assert record["speedup"] >= 5.0, record
            else:
                assert record["speedup"] >= 0.95, record

    family, events_count, keys, window = CONFIGS[-2 if not SMOKE else 0]
    stream = _stream(events_count, keys)
    text = EQUALITY.format(w=window)
    benchmark.pedantic(
        lambda: _engine(text, "tree", True).run(stream),
        rounds=1,
        iterations=1,
    )


def _format(rows) -> str:
    from repro.bench import format_table

    return format_table(
        (
            "workload",
            "runtime",
            "K",
            "window",
            "matches",
            "ev/s linear",
            "ev/s indexed",
            "speedup",
            "probe hits",
            "pm expired",
        ),
        rows,
        title=(
            "Figure 21 — indexed vs. linear partial-match stores "
            "(identical match sequences asserted)"
        ),
    )
