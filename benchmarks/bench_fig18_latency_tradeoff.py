"""Figure 18: throughput vs detection latency for α ∈ {0, 0.5, 1}.

The hybrid cost model ``Cost_trpt + α·Cost_lat`` (Section 6.1) trades
throughput for latency.  Paper shape: raising α lowers latency (often at
some throughput cost), and the tree-based methods (DP-B, ZSTREAM-ORD)
achieve the best overall trade-off.

Latency here is the wall-clock detection latency: the time between the
engine starting to process the match-completing event and the match
being reported (see ``repro.engines.Match.wall_latency``).
"""

from __future__ import annotations

from repro.bench import format_table

from _common import mean_by

ALGORITHMS = ("GREEDY", "II-GREEDY", "DP-LD", "ZSTREAM-ORD", "DP-B")
ALPHAS = (0.0, 0.5, 1.0)


def test_fig18_latency_tradeoff(benchmark, env):
    patterns = env.patterns("sequence", sizes=(3, 4, 5))
    results = []
    for pattern in patterns:
        for algorithm in ALGORITHMS:
            for alpha in ALPHAS:
                result = env.run(
                    pattern, algorithm, "sequence", alpha=alpha
                )
                results.append(result)

    throughput = mean_by(results, "throughput", "algorithm", "alpha")
    latency = mean_by(
        results, "mean_wall_latency_ms", "algorithm", "alpha"
    )
    rows = []
    for algorithm in ALGORITHMS:
        for alpha in ALPHAS:
            rows.append(
                (
                    algorithm,
                    alpha,
                    f"{throughput[(algorithm, alpha)]:,.0f}",
                    round(latency[(algorithm, alpha)], 4),
                )
            )
    env.write(
        "fig18_latency_tradeoff.txt",
        format_table(
            ("algorithm", "alpha", "throughput (ev/s)",
             "mean detection latency (ms)"),
            rows,
            title="Figure 18 — throughput vs latency across alpha",
        ),
    )

    # Shape: for each algorithm, the latency-aware plans (alpha = 1) are
    # no slower to *detect* than the pure-throughput plans, on average.
    for algorithm in ALGORITHMS:
        assert (
            latency[(algorithm, 1.0)] <= latency[(algorithm, 0.0)] * 1.5
        )

    pattern = env.patterns("sequence", sizes=(4,))[0]
    benchmark.pedantic(
        lambda: env.run(pattern, "DP-B", "sequence", alpha=0.5),
        rounds=1,
        iterations=1,
    )
