"""Unit tests for engine building blocks: buffers, matches, metrics."""

import pytest

from repro.engines import (
    EngineMetrics,
    LatencyHistogram,
    Match,
    PartialMatch,
    VariableBuffer,
)
from repro.events import Event


def ev(type_name="A", ts=0.0, seq=0, **attrs):
    return Event(type_name, ts, attrs, seq=seq)


class TestVariableBuffer:
    def test_type_admission(self):
        buffer = VariableBuffer("a", "A")
        assert buffer.offer(ev("A", seq=0))
        assert not buffer.offer(ev("B", seq=1))
        assert len(buffer) == 1

    def test_unary_filter(self):
        buffer = VariableBuffer("a", "A", lambda e: e["x"] > 0)
        assert buffer.offer(ev("A", x=1))
        assert not buffer.offer(ev("A", x=-1))

    def test_prune_by_timestamp(self):
        buffer = VariableBuffer("a", "A")
        for i in range(5):
            buffer.offer(ev("A", ts=float(i), seq=i))
        buffer.prune(3.0)
        assert [e.seq for e in buffer] == [3, 4]

    def test_events_before_trigger(self):
        buffer = VariableBuffer("a", "A")
        for i in range(5):
            buffer.offer(ev("A", ts=float(i), seq=i))
        assert [e.seq for e in buffer.events_before(3)] == [0, 1, 2]

    def test_remove_seq(self):
        buffer = VariableBuffer("a", "A")
        for i in range(3):
            buffer.offer(ev("A", ts=float(i), seq=i))
        buffer.remove_seq(1)
        assert [e.seq for e in buffer] == [0, 2]


class TestPartialMatch:
    def test_singleton(self):
        pm = PartialMatch.singleton("a", ev(ts=2.0, seq=5))
        assert pm.trigger_seq == 5
        assert pm.min_ts == pm.max_ts == 2.0
        assert pm.event_seqs() == frozenset({5})

    def test_extended_updates_span(self):
        pm = PartialMatch.singleton("a", ev(ts=2.0, seq=0))
        pm2 = pm.extended("b", ev("B", ts=5.0, seq=3))
        assert pm2.min_ts == 2.0 and pm2.max_ts == 5.0
        assert pm2.trigger_seq == 3
        assert pm.event_seqs() == frozenset({0})  # original untouched

    def test_kleene_tuple(self):
        pm = PartialMatch.kleene_singleton("b", ev("B", ts=1.0, seq=0))
        pm2 = pm.kleene_extended("b", ev("B", ts=2.0, seq=4))
        assert pm2.bindings["b"][1].seq == 4
        assert pm2.event_seqs() == frozenset({0, 4})
        assert pm2.contains_seq(4)

    def test_merged(self):
        left = PartialMatch.singleton("a", ev(ts=1.0, seq=0))
        right = PartialMatch.singleton("b", ev("B", ts=4.0, seq=2))
        merged = left.merged(right, trigger_seq=2)
        assert set(merged.bindings) == {"a", "b"}
        assert merged.min_ts == 1.0 and merged.max_ts == 4.0

    def test_window_checks(self):
        pm = PartialMatch.singleton("a", ev(ts=1.0, seq=0))
        assert pm.span_with(ev("B", ts=5.0, seq=1), window=4.0)
        assert not pm.span_with(ev("B", ts=5.1, seq=1), window=4.0)


class TestMatch:
    def test_latency_from_last_event(self):
        pm = PartialMatch.singleton("a", ev(ts=1.0, seq=0)).extended(
            "b", ev("B", ts=3.0, seq=1)
        )
        match = Match(pm, detection_ts=4.5)
        assert match.latency == pytest.approx(1.5)
        assert match["a"].seq == 0

    def test_key_is_engine_independent(self):
        events = {"a": ev(seq=0), "b": ev("B", ts=1.0, seq=1)}
        pm1 = PartialMatch.singleton("a", events["a"]).extended(
            "b", events["b"]
        )
        pm2 = PartialMatch.singleton("b", events["b"]).extended(
            "a", events["a"], trigger_seq=1
        )
        assert Match(pm1, 2.0).key() == Match(pm2, 9.0).key()

    def test_kleene_key_sorted(self):
        pm = PartialMatch.kleene_singleton("b", ev("B", seq=2))
        pm = pm.kleene_extended("b", ev("B", ts=1.0, seq=5))
        assert ("b", (2, 5)) in Match(pm, 1.0).key()


class TestEngineMetrics:
    def test_peaks(self):
        metrics = EngineMetrics()
        metrics.note_state(5, 10)
        metrics.note_state(3, 20)
        assert metrics.peak_partial_matches == 5
        assert metrics.peak_buffered_events == 20
        assert metrics.peak_memory_units == 25

    def test_latency_summary(self):
        metrics = EngineMetrics()
        for value in (1.0, 2.0, 3.0):
            metrics.note_match(value)
        assert metrics.matches_emitted == 3
        assert metrics.mean_latency == pytest.approx(2.0)
        assert metrics.max_latency == 3.0

    def test_merge_adds_counters_and_peaks(self):
        first = EngineMetrics(events_processed=10)
        first.note_state(4, 6)
        first.note_match(1.0)
        second = EngineMetrics(events_processed=10)
        second.note_state(2, 1)
        merged = first.merge(second)
        assert merged.matches_emitted == 1
        assert merged.peak_partial_matches == 6
        assert merged.peak_memory_units == 13
        assert merged.events_processed == 10

    def test_summary_keys(self):
        summary = EngineMetrics().summary()
        assert {"events", "matches", "peak_pm", "peak_memory"} <= set(summary)
        assert {
            "selectivity_observations",
            "migrations",
            "pm_migrated",
            "matches_saved_by_migration",
        } <= set(summary)
        assert {
            "range_probes",
            "range_hits",
            "predicate_kernel_calls",
        } <= set(summary)

    def test_merge_adds_range_and_kernel_counters(self):
        first = EngineMetrics(
            range_probes=10, range_hits=7, predicate_kernel_calls=100
        )
        second = EngineMetrics(
            range_probes=5, range_hits=1, predicate_kernel_calls=40
        )
        merged = first.merge(second)
        assert merged.range_probes == 15
        assert merged.range_hits == 8
        assert merged.predicate_kernel_calls == 140
        sequential = first.merge(
            second, disjoint_streams=True, concurrent=False
        )
        # Counters add under the sequential (peak-max) rule too.
        assert sequential.range_probes == 15
        assert sequential.predicate_kernel_calls == 140

    def test_merge_aggregates_migration_and_selectivity_counters(self):
        first = EngineMetrics(
            selectivity_observations=7,
            migrations=1,
            pm_migrated=5,
            matches_saved_by_migration=2,
        )
        second = EngineMetrics(
            selectivity_observations=3,
            migrations=2,
            pm_migrated=4,
            matches_saved_by_migration=1,
        )
        merged = first.merge(second)
        assert merged.selectivity_observations == 10
        assert merged.migrations == 3
        assert merged.pm_migrated == 9
        assert merged.matches_saved_by_migration == 3

    def test_sequential_merge_takes_peak_max(self):
        first = EngineMetrics(events_processed=10)
        first.note_state(4, 6)
        second = EngineMetrics(events_processed=5)
        second.note_state(2, 9)
        merged = first.merge(second, disjoint_streams=True, concurrent=False)
        # Sequential engine generations never coexist: peaks take the
        # max, segment event counts add.
        assert merged.peak_partial_matches == 4
        assert merged.peak_buffered_events == 9
        assert merged.events_processed == 15


class TestLatencyHistogram:
    def test_empty(self):
        histogram = LatencyHistogram()
        assert len(histogram) == 0
        assert histogram.p50 == 0.0
        assert histogram.p99 == 0.0
        assert histogram.mean == 0.0
        assert histogram.to_dict()["count"] == 0

    def test_percentiles_within_bucket_error(self):
        values = [i / 1000.0 for i in range(1, 1001)]  # 1ms .. 1s
        histogram = LatencyHistogram.of(values)
        assert len(histogram) == 1000
        # Buckets grow by 1.2x, so any quantile is within ~20% of exact.
        for q, exact in ((0.50, 0.500), (0.95, 0.950), (0.99, 0.990)):
            got = histogram.percentile(q)
            assert exact / 1.25 <= got <= exact * 1.25
        assert histogram.min == pytest.approx(0.001)
        assert histogram.max == pytest.approx(1.0)
        assert histogram.mean == pytest.approx(sum(values) / 1000.0)

    def test_extremes_clamped_and_floored(self):
        histogram = LatencyHistogram.of([-1.0, 0.0, 1e-9])
        # Negative and sub-floor samples all land in bucket 0.
        assert histogram.counts == {0: 3}
        assert histogram.min == 0.0
        assert histogram.p99 <= 1e-9  # clamped to the exactly-tracked max

    def test_single_sample_percentiles_are_exact(self):
        histogram = LatencyHistogram.of([0.25])
        assert histogram.p50 == pytest.approx(0.25)
        assert histogram.p99 == pytest.approx(0.25)

    def test_merge_equals_union(self):
        left = LatencyHistogram.of([0.001 * i for i in range(1, 50)])
        right = LatencyHistogram.of([0.01 * i for i in range(1, 100)])
        union = LatencyHistogram.of(
            [0.001 * i for i in range(1, 50)]
            + [0.01 * i for i in range(1, 100)]
        )
        merged = left.merge(right)
        assert merged.counts == union.counts
        assert merged.count == union.count
        assert merged.total == pytest.approx(union.total)
        assert merged.min == union.min and merged.max == union.max
        for q in (0.5, 0.95, 0.99):
            assert merged.percentile(q) == union.percentile(q)
        # Merge does not mutate its inputs.
        assert left.count == 49 and right.count == 99

    def test_merge_with_empty_is_identity(self):
        histogram = LatencyHistogram.of([0.1, 0.2])
        merged = histogram.merge(LatencyHistogram())
        assert merged.counts == histogram.counts
        assert merged.min == histogram.min
        assert merged.max == histogram.max

    def test_metrics_merge_combines_histograms_both_modes(self):
        first = EngineMetrics()
        first.detection_latency.record(0.010)
        first.detection_latency.record(0.020)
        second = EngineMetrics()
        second.detection_latency.record(0.500)
        for kwargs in (
            {},  # concurrent (parallel workers)
            {"disjoint_streams": True, "concurrent": False},  # sequential
        ):
            merged = first.merge(second, **kwargs)
            assert merged.detection_latency.count == 3
            assert merged.detection_latency.min == pytest.approx(0.010)
            assert merged.detection_latency.max == pytest.approx(0.500)
        # Inputs untouched.
        assert first.detection_latency.count == 2
        assert second.detection_latency.count == 1

    def test_metrics_summary_carries_histogram(self):
        metrics = EngineMetrics()
        metrics.detection_latency.record(0.004)
        summary = metrics.summary()["detection_latency"]
        assert summary["count"] == 1
        assert summary["p50"] == pytest.approx(0.004)

    def test_histogram_pickles(self):
        import pickle

        histogram = LatencyHistogram.of([0.001, 0.1, 2.0])
        clone = pickle.loads(pickle.dumps(histogram))
        assert clone.counts == histogram.counts
        assert clone.count == 3
        assert clone.p95 == histogram.p95
