"""Fault tolerance of the service runtime (:mod:`repro.service.faults`).

The seeded chaos matrix: every failure mode the runtime claims to
survive — worker kill, socket reset mid-frame, torn write, frozen
worker, shard-server restart, reconnect exhaustion with graceful
degradation — injected deterministically on the socket and process
backends, each path ending in the byte-identity assertion against the
interpreted single-threaded run.  Around the matrix sit the mechanics:
the fault plan's trigger/fire semantics, shard-server frame hardening,
thread-channel teardown, the fault-tolerance metrics counters, and the
frontier invariants across mid-stream recovery.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import time

import pytest

from repro import (
    ParallelConfig,
    ParallelError,
    ParallelExecutor,
    Stream,
    build_engines,
    canonical_order,
    estimate_pattern_catalog,
    parse_pattern,
    plan_pattern,
)
from repro.engines.metrics import EngineMetrics
from repro.errors import WorkerCrashError
from repro.events import Event
from repro.parallel import match_records
from repro.service import (
    Fault,
    FaultPlan,
    ShardDegraded,
    ShardRepromoted,
    ShardServer,
    SocketReconnected,
    WorkerCrashed,
    WorkerReseeded,
    serve_in_thread,
)
from repro.service.protocol import (
    MSG_BATCH,
    MSG_INIT,
    MSG_PING,
    REPLY_ERROR,
    REPLY_PONG,
    WorkerState,
    recv_frame,
    send_frame,
)
from repro.service.transport import (
    SocketChannel,
    ThreadChannel,
    TransportDead,
    backoff_delay,
)

KEYED = "PATTERN SEQ(A a, B b, C c) WHERE a.k = b.k AND b.k = c.k WITHIN 1.5"

import random as _random


def mixed_stream(seed: int, count: int = 300, keys: int = 5) -> Stream:
    rng = _random.Random(seed)
    events, t = [], 0.0
    for _ in range(count):
        t += rng.uniform(0.01, 0.09)
        events.append(
            Event(
                rng.choice("ABCD"),
                t,
                {"k": rng.randrange(keys), "v": rng.random()},
            )
        )
    return Stream(events)


def plans_for(text: str, stream: Stream):
    pattern = parse_pattern(text)
    catalog = estimate_pattern_catalog(pattern, stream)
    return plan_pattern(pattern, catalog, algorithm="GREEDY")


def serial_records(planned, stream):
    return match_records(canonical_order(build_engines(planned).run(stream)))


def chaos_config(backend: str, plan: FaultPlan, **overrides) -> ParallelConfig:
    base = dict(
        workers=2,
        partitioner="key",
        backend=backend,
        batch_size=16,
        recovery="reseed",
        fault_plan=plan,
        connect_attempts=3,
        reconnect_attempts=4,
        backoff_base=0.02,
        backoff_max=0.2,
        heartbeat_seconds=0.2,
        liveness_seconds=1.0,
    )
    base.update(overrides)
    return ParallelConfig(**base)


def run_chaos(planned, stream, config):
    """Feed the stream in two halves through a session stream; return
    (records, metrics, runtime_events)."""
    with ParallelExecutor(planned, config) as executor:
        run = executor.session().stream()
        events = list(stream)
        out = list(run.feed(events[: len(events) // 2]))
        out.extend(run.feed(events[len(events) // 2:]))
        out.extend(run.finish())
        return match_records(out), run.metrics, run.runtime_events


class TestFaultPlan:
    def test_unknown_action_is_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultPlan().add(Fault("meteor"))

    def test_nth_occurrence_trigger_fires_exactly_once(self):
        plan = FaultPlan()
        plan.crash_server(after_batches=3)
        batch = (MSG_BATCH, 1, 0, [])
        assert plan.take_server_fault(batch) is None
        assert plan.take_server_fault(batch) is None
        fault = plan.take_server_fault(batch)
        assert fault is not None and fault.fired
        # Fired faults never re-fire: recovery's replacement channels
        # behave healthily.
        assert plan.take_server_fault(batch) is None
        assert plan.pending == []

    def test_batch_trigger_matches_worker_and_batch_id(self):
        plan = FaultPlan()
        plan.kill_worker(1, at_batch=2)
        assert plan.take_send_fault(0, (MSG_BATCH, 1, 2, [])) is None
        assert plan.take_send_fault(1, (MSG_BATCH, 1, 0, [])) is None
        assert plan.take_send_fault(1, (MSG_BATCH, 1, 2, [])) is not None

    def test_firings_are_logged_for_the_artifact(self):
        plan = FaultPlan(seed=7)
        plan.tear_send(0, at_batch=1, tear_bytes=5)
        plan.take_send_fault(0, (MSG_BATCH, 1, 1, []))
        assert plan.log == [
            {
                "action": "tear",
                "worker": 0,
                "message": MSG_BATCH,
                "batch": 1,
                "detail": {"tear_bytes": 5, "seconds": 0.0, "nth": 1},
            }
        ]

    def test_seeded_rng_is_reproducible(self):
        assert FaultPlan(seed=3).rng.random() == FaultPlan(seed=3).rng.random()

    def test_backoff_delay_is_capped_and_jittered(self):
        rng = _random.Random(0)
        for attempt in range(12):
            delay = backoff_delay(attempt, 0.05, 2.0, rng)
            assert 0.0 < delay <= 2.0


class TestChaosMatrixProcesses:
    """The seeded chaos matrix on the process backend."""

    def test_worker_kill_recovers_byte_identically(self):
        stream = mixed_stream(201, count=400)
        planned = plans_for(KEYED, stream)
        # Batch 10 lands in the second feed chunk, after the first
        # chunk's acks were drained — so the kill exercises the full
        # reseed path (SEED from the acked window log), not just the
        # unacked-batch resend.
        plan = FaultPlan(seed=1).kill_worker(0, at_batch=10)
        records, metrics, events = run_chaos(
            planned, stream, chaos_config("processes", plan, batch_size=8)
        )
        assert records == serial_records(planned, stream)
        assert plan.pending == []
        assert metrics.worker_crashes >= 1
        assert metrics.worker_reseeds >= 1
        assert metrics.send_retries >= 1
        assert any(isinstance(event, WorkerCrashed) for event in events)
        assert any(isinstance(event, WorkerReseeded) for event in events)

    def test_torn_write_falls_back_to_kill_and_recovers(self):
        # Queue transports have no wire to tear; the plan's tear fault
        # degrades to a worker kill and recovery must still hold.
        stream = mixed_stream(203, count=400)
        planned = plans_for(KEYED, stream)
        plan = FaultPlan(seed=2).tear_send(1, at_batch=2, tear_bytes=7)
        records, metrics, _ = run_chaos(
            planned, stream, chaos_config("processes", plan)
        )
        assert records == serial_records(planned, stream)
        assert metrics.worker_crashes >= 1

    def test_frozen_worker_is_detected_within_the_liveness_deadline(self):
        stream = mixed_stream(205, count=400)
        planned = plans_for(KEYED, stream)
        plan = FaultPlan(seed=3).freeze_worker(0, at_batch=2)
        config = chaos_config(
            "processes",
            plan,
            heartbeat_seconds=0.1,
            liveness_seconds=0.5,
        )
        started = time.monotonic()
        records, metrics, _ = run_chaos(planned, stream, config)
        elapsed = time.monotonic() - started
        assert records == serial_records(planned, stream)
        assert metrics.heartbeats_missed >= 1
        assert metrics.worker_crashes >= 1
        # Detection is bounded by the deadline, not by luck: the whole
        # run (including respawn and replay) fits in a few deadlines.
        assert elapsed < 0.5 * 20

    def test_frozen_worker_without_recovery_is_a_typed_error_not_a_hang(self):
        stream = mixed_stream(207, count=300)
        planned = plans_for(KEYED, stream)
        plan = FaultPlan(seed=4).freeze_worker(0, at_batch=1)
        config = chaos_config(
            "processes",
            plan,
            recovery="fail",
            heartbeat_seconds=0.1,
            liveness_seconds=0.4,
        )
        with ParallelExecutor(planned, config) as executor:
            run = executor.session().stream()
            with pytest.raises(WorkerCrashError, match="liveness deadline"):
                run.feed(list(stream))
                run.finish()

    def test_delayed_replies_are_a_straggler_not_a_failure(self):
        stream = mixed_stream(209, count=300)
        planned = plans_for(KEYED, stream)
        plan = FaultPlan(seed=5).delay_replies(1, seconds=0.4, at_batch=1)
        records, metrics, events = run_chaos(
            planned, stream, chaos_config("processes", plan)
        )
        assert records == serial_records(planned, stream)
        assert metrics.worker_crashes == 0
        assert events == []

    def test_window_partition_crash_is_a_typed_error(self):
        # Window partitioning runs outside the reseed protocol (window
        # slices are not a replayable single-engine log), so a mid-run
        # crash must surface as the typed error — never a hang, never
        # silent data loss.
        stream = mixed_stream(223, count=300)
        planned = plans_for(KEYED, stream)
        plan = FaultPlan(seed=8).kill_worker(0, at_batch=2)
        config = chaos_config(
            "processes", plan, partitioner="window", span=3.0
        )
        with ParallelExecutor(planned, config) as executor:
            run = executor.session().stream()
            with pytest.raises(WorkerCrashError, match="died mid-stream"):
                run.feed(list(stream))
                run.finish()

    def test_query_partition_crash_is_a_typed_error(self):
        # Query partitioning ships SharedSpec sub-plans, which the
        # reseed path does not cover — same contract: typed error.
        from repro import plan_workload
        from repro.multiquery import Workload
        from repro.stats import StatisticsCatalog

        stream = mixed_stream(227, count=300)
        workload = Workload.of(
            "PATTERN SEQ(A a, B b) WHERE a.k = b.k WITHIN 1.5",
            "PATTERN SEQ(B p, C q) WHERE p.k = q.k WITHIN 1.5",
            "PATTERN SEQ(A x, C y) WHERE x.k = y.k WITHIN 1.5",
        )
        catalogs = {
            name: StatisticsCatalog(
                {t: 1.0 for t in pattern.variable_types().values()}
            )
            for name, pattern in workload.items()
        }
        shared = plan_workload(workload, catalogs)
        plan = FaultPlan(seed=9).kill_worker(0, at_batch=2)
        config = chaos_config(
            "processes", plan, partitioner="query", batch_size=8
        )
        with ParallelExecutor(shared, config) as executor:
            run = executor.session().stream()
            with pytest.raises(WorkerCrashError, match="died mid-stream"):
                run.feed(list(stream))
                run.finish()


class TestChaosMatrixSocket:
    """The seeded chaos matrix on the socket backend."""

    def run_with_server(self, planned, stream, plan, **overrides):
        server = serve_in_thread(fault_plan=plan)
        try:
            config = chaos_config(
                "socket", plan, shards=[server.address], **overrides
            )
            return run_chaos(planned, stream, config)
        finally:
            server.kill()

    def test_connection_kill_reconnects_and_reseeds(self):
        stream = mixed_stream(211, count=400)
        planned = plans_for(KEYED, stream)
        plan = FaultPlan(seed=6).kill_worker(0, at_batch=3)
        records, metrics, events = self.run_with_server(
            planned, stream, plan
        )
        assert records == serial_records(planned, stream)
        assert metrics.worker_crashes >= 1
        assert metrics.socket_reconnects >= 1
        assert any(isinstance(event, SocketReconnected) for event in events)

    @pytest.mark.parametrize("tear_bytes", [0, 2, 20])
    def test_torn_write_at_byte_offset_recovers(self, tear_bytes):
        # 0: reset with nothing on the wire; 2: torn inside the 4-byte
        # length prefix; 20: torn mid-payload.  The shard sees EOF
        # mid-frame, the driver reconnects and replays.
        stream = mixed_stream(213, count=400)
        planned = plans_for(KEYED, stream)
        plan = FaultPlan(seed=7).tear_send(
            1, at_batch=2, tear_bytes=tear_bytes
        )
        records, metrics, _ = self.run_with_server(planned, stream, plan)
        assert records == serial_records(planned, stream)
        assert metrics.socket_reconnects >= 1

    def test_frozen_socket_worker_triggers_liveness_reconnect(self):
        stream = mixed_stream(215, count=400)
        planned = plans_for(KEYED, stream)
        plan = FaultPlan(seed=8).freeze_worker(0, at_batch=2)
        records, metrics, _ = self.run_with_server(
            planned,
            stream,
            plan,
            heartbeat_seconds=0.1,
            liveness_seconds=0.5,
        )
        assert records == serial_records(planned, stream)
        assert metrics.heartbeats_missed >= 1
        assert metrics.socket_reconnects >= 1

    def test_shard_server_restart_mid_run_recovers(self):
        # The server hard-closes after a scheduled number of handled
        # batches (as if the host died); a supervisor brings a new one
        # up on the same port; the driver's backoff re-dial finds it
        # and the replayed run stays byte-identical.
        stream = mixed_stream(217, count=400)
        planned = plans_for(KEYED, stream)
        plan = FaultPlan(seed=9).crash_server(after_batches=5)
        server = serve_in_thread(fault_plan=plan)
        host, port = server.address
        replacements = []

        def supervisor():
            while not server._closing:
                time.sleep(0.01)
            while True:
                try:
                    replacement = ShardServer(host, port)
                except OSError:
                    time.sleep(0.02)
                    continue
                replacements.append(replacement)
                replacement.serve_forever()
                return

        thread = threading.Thread(target=supervisor, daemon=True)
        thread.start()
        try:
            config = chaos_config(
                "socket",
                plan,
                shards=[(host, port)],
                connect_attempts=5,
                reconnect_attempts=6,
                backoff_base=0.05,
                backoff_max=0.5,
            )
            records, metrics, _ = run_chaos(planned, stream, config)
            assert records == serial_records(planned, stream)
            assert metrics.worker_crashes >= 1
            assert metrics.socket_reconnects >= 1
        finally:
            server.kill()
            for replacement in replacements:
                replacement.kill()

    def test_reconnect_exhaustion_degrades_to_local_worker(self):
        # Kill the only shard permanently: reconnection exhausts and
        # the circuit breaker demotes both workers to local serial
        # channels — the run completes, degraded but byte-identical.
        stream = mixed_stream(219, count=400)
        planned = plans_for(KEYED, stream)
        plan = FaultPlan(seed=10).kill_worker(0, at_batch=3)
        server = serve_in_thread(fault_plan=plan)
        config = chaos_config(
            "socket",
            plan,
            shards=[server.address],
            connect_attempts=1,
            reconnect_attempts=2,
            backoff_base=0.01,
            backoff_max=0.05,
            degradation="local",
            degrade_backend="serial",
        )
        with ParallelExecutor(planned, config) as executor:
            run = executor.session().stream()
            events = list(stream)
            out = list(run.feed(events[:150]))
            server.kill()  # no supervisor: the shard is gone for good
            out.extend(run.feed(events[150:]))
            out.extend(run.finish())
            assert match_records(out) == serial_records(planned, stream)
            assert run.metrics.shards_degraded >= 1
            assert any(
                isinstance(event, ShardDegraded)
                for event in run.runtime_events
            )

    def test_degraded_shard_is_repromoted_when_it_comes_back(self):
        # Half-open circuit breaker: after degradation to a local
        # serial worker, restart the shard on the same address, let the
        # probe interval elapse, and the pool must dial it, replay the
        # window log, and promote the partition back — byte-identically.
        stream = mixed_stream(219, count=400)
        planned = plans_for(KEYED, stream)
        plan = FaultPlan(seed=10).kill_worker(0, at_batch=3)
        server = serve_in_thread(fault_plan=plan)
        host, port = server.address
        config = chaos_config(
            "socket",
            plan,
            shards=[server.address],
            connect_attempts=1,
            reconnect_attempts=2,
            backoff_base=0.01,
            backoff_max=0.05,
            degradation="local",
            degrade_backend="serial",
            repromote_seconds=0.05,
        )
        replacement = None
        try:
            with ParallelExecutor(planned, config) as executor:
                run = executor.session().stream()
                events = list(stream)
                out = list(run.feed(events[:150]))
                server.kill()  # exhaust reconnects -> degrade
                out.extend(run.feed(events[150:250]))
                # Crash detection is synchronous inside feed's submit
                # and drain paths, and the dead-socket send may only
                # surface a few batches later — keep feeding single
                # events until the breaker opens.  The shard must not
                # come back before that, or the worker just reconnects
                # and nothing degrades.
                remaining = list(events[250:])
                deadline = time.monotonic() + 10.0
                while not any(
                    isinstance(event, ShardDegraded)
                    for event in run.runtime_events
                ):
                    assert time.monotonic() < deadline, "never degraded"
                    if remaining:
                        out.extend(run.feed([remaining.pop(0)]))
                    else:
                        time.sleep(0.02)
                # Bring the shard back on the same address (the old
                # listener may linger briefly; retry the bind).
                rebind_error = None
                for _ in range(200):
                    try:
                        replacement = serve_in_thread(host, port)
                        break
                    except OSError as error:
                        rebind_error = error
                        time.sleep(0.02)
                assert replacement is not None, repr(rebind_error)
                time.sleep(0.1)  # let the probe interval elapse
                out.extend(run.feed(remaining))
                out.extend(run.finish())
                assert match_records(out) == serial_records(planned, stream)
                assert run.metrics.shards_degraded >= 1
                assert run.metrics.shards_repromoted >= 1
                promoted = [
                    event
                    for event in run.runtime_events
                    if isinstance(event, ShardRepromoted)
                ]
                assert promoted and promoted[0].address == (host, port)
        finally:
            if replacement is not None:
                replacement.kill()

    def test_reconnect_exhaustion_with_fail_policy_is_typed(self):
        stream = mixed_stream(221, count=300)
        planned = plans_for(KEYED, stream)
        server = serve_in_thread()
        config = chaos_config(
            "socket",
            None,
            shards=[server.address],
            connect_attempts=1,
            reconnect_attempts=2,
            backoff_base=0.01,
            backoff_max=0.05,
            fault_plan=None,
        )
        with ParallelExecutor(planned, config) as executor:
            run = executor.session().stream()
            events = list(stream)
            run.feed(events[:150])
            server.kill()
            with pytest.raises(WorkerCrashError, match="could not be"):
                run.feed(events[150:])
                run.finish()


class TestRecoveryFrontier:
    def test_frontier_stays_monotone_across_recovery(self):
        # feed() after a mid-stream crash+replay: the concatenation of
        # every released chunk must equal the canonical serial output
        # exactly — which pins monotone order, no duplicates, and no
        # reordering in one assertion.
        stream = mixed_stream(223, count=500)
        planned = plans_for(KEYED, stream)
        expected = serial_records(planned, stream)
        plan = FaultPlan(seed=11).kill_worker(0, at_batch=2)
        config = chaos_config("processes", plan, batch_size=8)
        with ParallelExecutor(planned, config) as executor:
            run = executor.session().stream()
            events = list(stream)
            out = []
            for start in range(0, len(events), 50):
                released = run.feed(events[start : start + 50])
                out.extend(released)
            out.extend(run.finish())
            assert match_records(out) == expected
            assert run.metrics.worker_crashes >= 1


class TestShardServerHardening:
    def poisoned_connection(self, server, payload_frame: bytes):
        sock = socket.create_connection(server.address, timeout=5.0)
        send_frame(sock, ("hello", 0))
        sock.sendall(payload_frame)
        return sock

    def test_corrupt_frame_gets_typed_error_and_close(self):
        server = serve_in_thread()
        try:
            garbage = b"\x00not pickle at all"
            frame = struct.pack(">I", len(garbage)) + garbage
            sock = self.poisoned_connection(server, frame)
            reply = recv_frame(sock)
            assert reply[1] == REPLY_ERROR
            assert "unpickle" in reply[2][1]
            with pytest.raises(EOFError):
                recv_frame(sock)  # the connection was closed
            sock.close()
        finally:
            server.kill()

    def test_oversized_frame_is_refused_before_allocation(self):
        server = serve_in_thread(max_frame_bytes=1024)
        try:
            frame = struct.pack(">I", 10_000_000)  # header only
            sock = self.poisoned_connection(server, frame)
            reply = recv_frame(sock)
            assert reply[1] == REPLY_ERROR
            assert "exceeds" in reply[2][1]
            with pytest.raises(EOFError):
                recv_frame(sock)
            sock.close()
        finally:
            server.kill()

    def test_bad_handshake_is_rejected_loudly(self):
        server = serve_in_thread()
        try:
            sock = socket.create_connection(server.address, timeout=5.0)
            send_frame(sock, ("hi there", 1, 2))
            reply = recv_frame(sock)
            assert reply[1] == REPLY_ERROR
            assert "protocol mismatch" in reply[2][1]
            sock.close()
        finally:
            server.kill()

    def test_poisoned_connection_does_not_kill_other_connections(self):
        server = serve_in_thread()
        try:
            healthy = SocketChannel(server.address, worker_id=7)
            garbage = b"\xffgarbage"
            frame = struct.pack(">I", len(garbage)) + garbage
            poisoned = self.poisoned_connection(server, frame)
            recv_frame(poisoned)  # the typed ERROR
            poisoned.close()
            # The healthy connection (and the accept loop) still serve.
            healthy.send((MSG_PING, 42))
            reply = healthy.recv(timeout=5.0)
            assert reply == (7, REPLY_PONG, 42)
            late = SocketChannel(server.address, worker_id=8)
            late.send((MSG_PING, 43))
            assert late.recv(timeout=5.0) == (8, REPLY_PONG, 43)
            healthy.kill()
            late.kill()
        finally:
            server.kill()


class _SlowUnpickle:
    """Payload whose unpickling blocks — a handler stuck mid-message."""

    def __reduce__(self):
        return (time.sleep, (3.0,))


class TestThreadChannelTeardown:
    def test_kill_unblocks_an_idle_worker_thread(self):
        channel = ThreadChannel(worker_id=0)
        assert channel.alive()
        channel.kill()  # poison + sentinel wakes the blocked get
        assert not channel._thread.is_alive()

    def test_stop_reports_a_stuck_handler_instead_of_silently_leaking(self):
        channel = ThreadChannel(worker_id=1)
        channel.stop_timeout = 0.2
        channel.send((MSG_INIT, pickle.dumps(_SlowUnpickle())))
        with pytest.raises(TransportDead, match="did not stop"):
            channel.stop()
        channel.kill()  # abandons the frozen daemon thread

    def test_poisoned_channel_stops_after_current_message(self):
        channel = ThreadChannel(worker_id=2)
        channel.send((MSG_PING, 1))
        deadline = time.monotonic() + 5.0
        while channel.recv(timeout=0.1) is None:
            assert time.monotonic() < deadline
        channel.kill()
        channel._thread.join(timeout=5.0)
        assert not channel._thread.is_alive()


class TestFaultCounters:
    def build(self, **values) -> EngineMetrics:
        metrics = EngineMetrics()
        for name, value in values.items():
            setattr(metrics, name, value)
        return metrics

    def test_counters_add_under_concurrent_merge(self):
        a = self.build(worker_crashes=2, socket_reconnects=1, send_retries=3)
        b = self.build(worker_crashes=1, shards_degraded=1, send_retries=2)
        merged = a.merge(b, disjoint_streams=True, concurrent=True)
        assert merged.worker_crashes == 3
        assert merged.socket_reconnects == 1
        assert merged.shards_degraded == 1
        assert merged.send_retries == 5

    def test_counters_add_under_sequential_merge_too(self):
        a = self.build(heartbeats_missed=4, worker_reseeds=1)
        b = self.build(heartbeats_missed=1, worker_reseeds=2)
        merged = a.merge(b, concurrent=False)
        assert merged.heartbeats_missed == 5
        assert merged.worker_reseeds == 3

    def test_counters_appear_in_the_summary(self):
        summary = self.build(worker_crashes=1, shards_degraded=2).summary()
        assert summary["worker_crashes"] == 1
        assert summary["shards_degraded"] == 2
        assert summary["socket_reconnects"] == 0


class TestPingPong:
    def test_ping_is_valid_in_any_state_and_echoes_the_token(self):
        state = WorkerState(worker_id=3)
        assert state.handle((MSG_PING, 99)) == [(3, REPLY_PONG, 99)]
        state.handle((MSG_INIT, pickle.dumps({"not": "a spec"})))
        assert state.handle((MSG_PING, "tok")) == [(3, REPLY_PONG, "tok")]


class TestIngestorShedAccounting:
    def test_sustained_shed_never_burns_sequence_numbers(self):
        # Shed events must not consume seqs: the frontier math would
        # wait forever on a seq that never reaches a worker.  Accepted
        # events must be fed with the contiguous range 0..accepted-1.
        import asyncio

        from repro.service import Ingestor

        stream = mixed_stream(225, count=300)
        planned = plans_for(KEYED, stream)

        async def main():
            executor = ParallelExecutor(
                planned,
                ParallelConfig(workers=1, partitioner="key", backend="serial"),
            )
            async with Ingestor(
                executor,
                max_pending=4,
                backpressure="shed",
                flush_events=512,
                flush_seconds=5.0,
            ) as ingestor:
                fed_seqs = []
                real_feed = ingestor._stream.feed

                def spying_feed(events, arrivals=None):
                    fed_seqs.extend(event.seq for event in events)
                    return real_feed(events, arrivals)

                ingestor._stream.feed = spying_feed
                accepted = 0
                for event in stream:
                    accepted += await ingestor.put(event)
                await ingestor.close()
                assert ingestor.shed > 0
                assert accepted + ingestor.shed == len(stream)
                assert sorted(fed_seqs) == list(range(accepted))
            executor.close()

        asyncio.run(main())


class TestConfigValidation:
    def test_liveness_must_exceed_heartbeat(self):
        with pytest.raises(ParallelError, match="liveness"):
            ParallelConfig(heartbeat_seconds=2.0, liveness_seconds=1.0)

    def test_degradation_policy_is_validated(self):
        with pytest.raises(ParallelError, match="degradation"):
            ParallelConfig(degradation="shrug")

    def test_degrade_backend_is_validated(self):
        with pytest.raises(ParallelError, match="degrade_backend"):
            ParallelConfig(degradation="local", degrade_backend="socket")

    def test_reconnect_attempts_must_be_positive(self):
        with pytest.raises(ParallelError, match="reconnect_attempts"):
            ParallelConfig(reconnect_attempts=0)

    def test_repromote_seconds_must_be_positive_when_given(self):
        with pytest.raises(ParallelError, match="repromote_seconds"):
            ParallelConfig(repromote_seconds=0.0)
        assert ParallelConfig(repromote_seconds=0.5).repromote_seconds == 0.5
