"""Smoke tests: the runnable examples must execute end to end.

The two heavyweight examples (stock_monitoring, latency_tradeoff) are
exercised with the same code path but are too slow for the unit suite;
the three fast ones run as-is.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = (
    "quickstart.py",
    "adaptive_reoptimization.py",
    "join_ordering.py",
    "multi_query_sharing.py",
    "parallel_scaling.py",
    "chaos_recovery.py",
)


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{name} should print a report"


def test_quickstart_shows_the_reordering_win(capsys):
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "TRIVIAL" in output and "DP-LD" in output
    assert "fewer partial matches" in output


def test_examples_have_module_docstrings():
    for path in sorted(EXAMPLES.glob("*.py")):
        source = path.read_text()
        assert source.lstrip().startswith('"""'), path.name


def test_all_examples_importable_without_main():
    # Importing must not execute main() (the __main__ guard).
    for path in sorted(EXAMPLES.glob("*.py")):
        namespace = runpy.run_path(str(path), run_name="not_main")
        assert "main" in namespace, path.name
