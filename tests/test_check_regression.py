"""The perf-regression gate (``benchmarks/check_regression.py``).

The gate is a standalone script (benchmarks is not a package), so it
is loaded here by file path.  These tests pin the comparison contract
CI relies on: pairing by run identity, the >tolerance failure rule,
ratio and derived-throughput metrics, and the smoke-scale guard.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = (
    Path(__file__).parent.parent / "benchmarks" / "check_regression.py"
)


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _payload(
    events_per_s: float, speedup: float = 2.0, smoke: bool = False
) -> dict:
    return {
        "smoke": smoke,
        "runs": [
            {
                "mode": "socket-loopback",
                "workers": 2,
                "events": 600,
                "matches": 878,
                "events_per_s": events_per_s,
                "wall_s": 600 / events_per_s,
            }
        ],
        "session_reuse": {"speedup": speedup},
    }


class TestCompare:
    def test_within_tolerance_passes(self, gate):
        regressions, _ = gate.compare(_payload(10000.0), _payload(8000.0))
        assert regressions == []

    def test_beyond_tolerance_fails(self, gate):
        regressions, _ = gate.compare(_payload(10000.0), _payload(7000.0))
        metrics = {item["metric"] for item in regressions}
        assert "events_per_s" in metrics
        for item in regressions:
            assert item["drop"] == pytest.approx(0.3)

    def test_ratio_metrics_gate_sections(self, gate):
        regressions, _ = gate.compare(
            _payload(10000.0, speedup=2.0), _payload(10000.0, speedup=1.0)
        )
        assert [item["metric"] for item in regressions] == ["speedup"]
        assert regressions[0]["key"] == (("section", "session_reuse"),)

    def test_improvement_never_fails(self, gate):
        regressions, _ = gate.compare(_payload(10000.0), _payload(90000.0))
        assert regressions == []

    def test_wall_time_derives_throughput(self, gate):
        record = {"family": "theta", "events": 1000, "linear_wall_s": 2.0}
        metrics = gate.throughput_metrics(record)
        assert metrics == {"events_per_s[linear]": 500.0}

    def test_smoke_mismatch_is_skipped_not_failed(self, gate):
        regressions, notes = gate.compare(
            _payload(10000.0), _payload(10.0, smoke=True)
        )
        assert regressions == []
        assert any("incomparable" in note for note in notes)

    def test_smoke_scale_gates_ratios_not_absolutes(self, gate):
        # Absolute throughput on millisecond walls is load noise:
        # a 40% drop at smoke scale must not fail the gate...
        regressions, notes = gate.compare(
            _payload(10000.0, smoke=True), _payload(6000.0, smoke=True)
        )
        assert regressions == []
        assert any("not gated" in note for note in notes)
        # ...but a collapsed speedup ratio still does (widened bound).
        regressions, _ = gate.compare(
            _payload(10000.0, speedup=3.0, smoke=True),
            _payload(10000.0, speedup=1.0, smoke=True),
        )
        assert [item["metric"] for item in regressions] == ["speedup"]
        assert regressions[0]["tolerance"] == gate.SMOKE_RATIO_TOLERANCE

    def test_new_and_missing_runs_are_notes(self, gate):
        baseline, current = _payload(10000.0), _payload(10000.0)
        current["runs"][0] = dict(current["runs"][0], mode="serial")
        regressions, notes = gate.compare(baseline, current)
        assert regressions == []
        assert any("missing" in note for note in notes)
        assert any("no baseline" in note for note in notes)

    def test_pairing_ignores_record_order(self, gate):
        runs = [
            dict(mode="serial", events_per_s=100.0),
            dict(mode="socket", events_per_s=10.0),
        ]
        baseline = {"smoke": False, "runs": runs}
        current = {"smoke": False, "runs": list(reversed(runs))}
        regressions, notes = gate.compare(baseline, current)
        assert regressions == [] and notes == []


class TestCheckCli:
    def _write(self, directory: Path, payload: dict) -> None:
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "BENCH_fig99.json").write_text(json.dumps(payload))

    def test_exit_codes(self, gate, tmp_path, capsys):
        baselines, results = tmp_path / "baselines", tmp_path / "results"
        self._write(baselines, _payload(10000.0))
        self._write(results, _payload(9000.0))
        assert gate.main([
            "--baselines", str(baselines), "--results", str(results)
        ]) == 0
        self._write(results, _payload(2000.0))
        assert gate.main([
            "--baselines", str(baselines), "--results", str(results)
        ]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_missing_result_skips(self, gate, tmp_path, capsys):
        baselines = tmp_path / "baselines"
        self._write(baselines, _payload(10000.0))
        assert gate.main([
            "--baselines", str(baselines),
            "--results", str(tmp_path / "results"),
        ]) == 0
        assert "SKIP" in capsys.readouterr().out

    def test_update_refreshes_baselines(self, gate, tmp_path):
        baselines, results = tmp_path / "baselines", tmp_path / "results"
        self._write(results, _payload(4000.0))
        assert gate.main([
            "--update",
            "--baselines", str(baselines), "--results", str(results),
        ]) == 0
        refreshed = json.loads((baselines / "BENCH_fig99.json").read_text())
        assert refreshed["runs"][0]["events_per_s"] == 4000.0
