"""Integration tests: planner pipeline, engine factory, disjunctions."""

import pytest

from repro.cost import HybridCostModel, NextMatchCostModel, ThroughputCostModel
from repro.engines import (
    DisjunctionEngine,
    NFAEngine,
    TreeEngine,
    build_engine,
    build_engines,
    reference_match_keys,
)
from repro.errors import OptimizerError
from repro.optimizers import plan_pattern, resolve_cost_model, total_cost
from repro.optimizers.planner import replan
from repro.patterns import decompose, nested_to_dnf, parse_pattern
from repro.stats import StatisticsCatalog

from .conftest import make_stream


@pytest.fixture
def catalog(abc_catalog):
    return abc_catalog


class TestResolveCostModel:
    def test_default_is_throughput(self, catalog):
        d = decompose(parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5"))
        assert isinstance(resolve_cost_model(d), ThroughputCostModel)

    def test_next_uses_min_rate_model(self, catalog):
        d = decompose(parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5"))
        assert isinstance(
            resolve_cost_model(d, selection="next"), NextMatchCostModel
        )

    def test_alpha_wraps_hybrid(self):
        d = decompose(parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5"))
        model = resolve_cost_model(d, alpha=0.5)
        assert isinstance(model, HybridCostModel)
        assert model.latency.last_variable == "b"

    def test_alpha_on_conjunction_requires_hint(self):
        d = decompose(parse_pattern("PATTERN AND(A a, B b) WITHIN 5"))
        with pytest.raises(OptimizerError):
            resolve_cost_model(d, alpha=0.5)
        model = resolve_cost_model(d, alpha=0.5, last_variable="a")
        assert model.latency.last_variable == "a"

    def test_unknown_selection(self):
        d = decompose(parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5"))
        with pytest.raises(OptimizerError):
            resolve_cost_model(d, selection="never")


class TestPlanPattern:
    def test_simple_pattern_single_plan(self, catalog):
        pattern = parse_pattern(
            "PATTERN SEQ(A a, B b, C c) WHERE a.x = c.x WITHIN 5"
        )
        planned = plan_pattern(pattern, catalog, algorithm="DP-LD")
        assert len(planned) == 1
        assert planned[0].algorithm == "DP-LD"
        assert planned[0].cost > 0
        assert set(planned[0].plan.variables) == {"a", "b", "c"}

    def test_tree_algorithm_yields_tree_plan(self, catalog):
        pattern = parse_pattern("PATTERN SEQ(A a, B b, C c) WITHIN 5")
        planned = plan_pattern(pattern, catalog, algorithm="DP-B")
        assert planned[0].is_tree

    def test_nested_pattern_one_plan_per_disjunct(self, catalog):
        pattern = parse_pattern(
            "PATTERN OR(SEQ(A a, B b), SEQ(C c, D d)) WITHIN 5"
        )
        planned = plan_pattern(pattern, catalog, algorithm="GREEDY")
        assert len(planned) == 2
        assert total_cost(planned) == pytest.approx(
            sum(p.cost for p in planned)
        )

    def test_optimizer_kwargs_forwarded(self, catalog):
        pattern = parse_pattern("PATTERN SEQ(A a, B b, C c) WITHIN 5")
        planned = plan_pattern(
            pattern, catalog, algorithm="II-RANDOM", seed=3, restarts=2
        )
        assert planned[0].algorithm == "II-RANDOM"


class TestEngineFactory:
    def test_order_plan_builds_nfa(self, catalog):
        pattern = parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5")
        planned = plan_pattern(pattern, catalog, algorithm="GREEDY")
        assert isinstance(build_engine(planned[0]), NFAEngine)

    def test_tree_plan_builds_tree_engine(self, catalog):
        pattern = parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5")
        planned = plan_pattern(pattern, catalog, algorithm="ZSTREAM")
        assert isinstance(build_engine(planned[0]), TreeEngine)

    def test_disjunction_wrapped(self, catalog):
        pattern = parse_pattern(
            "PATTERN OR(SEQ(A a, B b), SEQ(C c, D d)) WITHIN 5"
        )
        planned = plan_pattern(pattern, catalog, algorithm="GREEDY")
        engine = build_engines(planned)
        assert isinstance(engine, DisjunctionEngine)

    def test_empty_rejected(self):
        from repro.errors import EngineError

        with pytest.raises(EngineError):
            build_engines([])

    def test_disjunction_snapshot_round_trip(self, catalog):
        """export_state / build_engines(seed=...) across a disjunction."""
        pattern = parse_pattern(
            "PATTERN OR(SEQ(A a, B b), SEQ(C c, D d)) WITHIN 5"
        )
        planned = plan_pattern(pattern, catalog, algorithm="GREEDY")
        stream = list(make_stream(seed=4, count=60, types="ABCD"))
        donor = build_engines(planned)
        for event in stream[:30]:
            donor.process(event)
        snapshots = donor.export_state()
        assert len(snapshots) == 2
        seeded = build_engines(planned, seed=snapshots)
        donor_tail, seeded_tail = [], []
        for event in stream[30:]:
            donor_tail.extend(donor.process(event))
            seeded_tail.extend(seeded.process(event))
        assert {m.key() for m in seeded_tail} == {
            m.key() for m in donor_tail
        }


class TestReplan:
    """Adaptive re-planning keeps the pattern setup, swaps statistics."""

    def test_replan_reflects_new_rates(self, catalog):
        pattern = parse_pattern("PATTERN SEQ(A a, B b, C c) WITHIN 5")
        planned = plan_pattern(pattern, catalog, algorithm="GREEDY")
        flipped = StatisticsCatalog(
            {"A": 100.0, "B": 0.01, "C": 50.0}, catalog.selectivities
        )
        refreshed = replan(planned, flipped)
        assert len(refreshed) == len(planned)
        item, new = planned[0], refreshed[0]
        assert new.pattern is item.pattern
        assert new.decomposed is item.decomposed
        assert new.cost_model is item.cost_model
        assert new.selection == item.selection
        assert new.stats.rate("b") == pytest.approx(0.01)
        # GREEDY starts from the cheapest variable: the rate flip must
        # reorder the plan.
        assert new.plan.variables != item.plan.variables
        assert new.plan.variables[0] == "b"

    def test_replan_reflects_new_selectivities(self, catalog):
        pattern = parse_pattern(
            "PATTERN SEQ(A a, B b, C c) WHERE a.x = b.x WITHIN 5"
        )
        planned = plan_pattern(pattern, catalog, algorithm="GREEDY")
        sharpened = catalog.updated(
            selectivities={frozenset(("a", "b")): 0.001}
        )
        refreshed = replan(planned, sharpened)
        assert refreshed[0].stats.selectivity("a", "b") == pytest.approx(
            0.001
        )

    def test_replan_algorithm_override(self, catalog):
        from repro.optimizers import make_optimizer

        pattern = parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5")
        planned = plan_pattern(pattern, catalog, algorithm="GREEDY")
        refreshed = replan(
            planned, catalog, optimizer=make_optimizer("ZSTREAM")
        )
        assert refreshed[0].algorithm == "ZSTREAM"
        assert refreshed[0].is_tree


class TestDisjunctionExecution:
    def test_union_of_disjunct_matches(self, catalog):
        pattern = parse_pattern(
            "PATTERN OR(SEQ(A a, B b), SEQ(B b2, C c2)) WITHIN 4"
        )
        stream = make_stream(3, count=60)
        planned = plan_pattern(pattern, catalog, algorithm="GREEDY")
        engine = build_engines(planned)
        matches = engine.run(stream)
        expected = set()
        for sub in nested_to_dnf(pattern):
            expected |= reference_match_keys(decompose(sub), stream)
        assert {m.key() for m in matches} == expected

    def test_disjunction_metrics_merge(self, catalog):
        pattern = parse_pattern(
            "PATTERN OR(SEQ(A a, B b), SEQ(B b2, C c2)) WITHIN 4"
        )
        stream = make_stream(3, count=40)
        engine = build_engines(plan_pattern(pattern, catalog))
        engine.run(stream)
        metrics = engine.metrics
        assert metrics.events_processed == 40
        assert metrics.peak_partial_matches >= 0

    def test_pattern_name_attached_to_matches(self, catalog):
        pattern = parse_pattern(
            "PATTERN OR(SEQ(A a, B b), SEQ(C c, D d)) WITHIN 4",
            name="disjunction_demo",
        )
        stream = make_stream(5, count=60, types="ABCD")
        engine = build_engines(plan_pattern(pattern, catalog))
        matches = engine.run(stream)
        assert matches, "workload should produce at least one match"
        assert all("disjunction_demo#dnf" in m.pattern_name for m in matches)


class TestEndToEndAgainstReference:
    @pytest.mark.parametrize(
        "algorithm", ["TRIVIAL", "EFREQ", "GREEDY", "DP-LD", "ZSTREAM", "DP-B"]
    )
    def test_all_algorithms_same_matches(self, algorithm, catalog):
        pattern = parse_pattern(
            "PATTERN SEQ(A a, B b, C c) WHERE a.x = c.x WITHIN 4"
        )
        stream = make_stream(17, count=70)
        d = decompose(pattern)
        expected = reference_match_keys(d, stream)
        planned = plan_pattern(pattern, catalog, algorithm=algorithm)
        engine = build_engines(planned)
        assert {m.key() for m in engine.run(stream)} == expected
