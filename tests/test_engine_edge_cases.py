"""Edge-case and failure-injection tests for the engines."""

import pytest

from repro.engines import (
    NFAEngine,
    TreeEngine,
    reference_match_keys,
)
from repro.events import Event, Stream
from repro.patterns import decompose, parse_pattern
from repro.plans import OrderPlan, TreePlan, enumerate_bushy_trees, enumerate_orders, join

from .conftest import make_stream


class TestSharedEventTypes:
    """One event type bound at two different pattern positions."""

    PATTERN = "PATTERN SEQ(A first, A second) WHERE first.x < second.x WITHIN 5"

    def test_event_not_reused_within_match(self):
        stream = Stream(
            [Event("A", 1.0, {"x": 1}), Event("A", 2.0, {"x": 5})]
        )
        d = decompose(parse_pattern(self.PATTERN))
        for order in enumerate_orders(d.positive_variables):
            matches = NFAEngine(d, order).run(stream)
            assert len(matches) == 1
            assert matches[0]["first"].seq != matches[0]["second"].seq

    def test_both_engines_agree(self):
        stream = make_stream(31, count=40, types="A")
        d = decompose(parse_pattern(self.PATTERN))
        expected = reference_match_keys(d, stream)
        assert expected, "workload should produce matches"
        for order in enumerate_orders(d.positive_variables):
            got = {m.key() for m in NFAEngine(d, order).run(stream)}
            assert got == expected
        for tree in enumerate_bushy_trees(d.positive_variables):
            got = {m.key() for m in TreeEngine(d, tree).run(stream)}
            assert got == expected


class TestWindowBoundaries:
    def test_exactly_window_apart_included(self):
        # WITHIN W means max difference <= W (Section 2.1).
        stream = Stream([Event("A", 0.0), Event("B", 5.0)])
        d = decompose(parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5"))
        matches = NFAEngine(d, OrderPlan(("a", "b"))).run(stream)
        assert len(matches) == 1

    def test_just_over_window_excluded(self):
        stream = Stream([Event("A", 0.0), Event("B", 5.0001)])
        d = decompose(parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5"))
        assert NFAEngine(d, OrderPlan(("a", "b"))).run(stream) == []

    def test_equal_timestamps_fail_seq_order(self):
        stream = Stream([Event("A", 1.0), Event("B", 1.0)])
        d = decompose(parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5"))
        assert NFAEngine(d, OrderPlan(("a", "b"))).run(stream) == []

    def test_equal_timestamps_match_conjunction(self):
        stream = Stream([Event("A", 1.0), Event("B", 1.0)])
        d = decompose(parse_pattern("PATTERN AND(A a, B b) WITHIN 5"))
        assert len(NFAEngine(d, OrderPlan(("a", "b"))).run(stream)) == 1


class TestStreamsWithoutWork:
    def test_empty_stream(self):
        d = decompose(parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5"))
        engine = NFAEngine(d, OrderPlan(("a", "b")))
        assert engine.run(Stream()) == []
        assert engine.metrics.events_processed == 0

    def test_unrelated_types_ignored_cheaply(self):
        stream = Stream([Event("Z", float(i)) for i in range(50)])
        d = decompose(parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5"))
        engine = NFAEngine(d, OrderPlan(("a", "b")))
        assert engine.run(stream) == []
        assert engine.metrics.partial_matches_created == 0
        assert engine.metrics.peak_buffered_events == 0

    def test_only_first_type_present(self):
        stream = Stream([Event("A", float(i)) for i in range(10)])
        d = decompose(parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5"))
        engine = NFAEngine(d, OrderPlan(("a", "b")))
        assert engine.run(stream) == []
        # Partial matches accumulate but never complete; window pruning
        # keeps the live count bounded.
        assert engine.metrics.peak_partial_matches <= 10


class TestWindowPruning:
    def test_live_state_stays_bounded_on_long_streams(self):
        # 500 events, window 2: state must track the window, not the
        # stream.
        stream = make_stream(12, count=500, types="AB", step_low=0.2,
                             step_high=0.4)
        d = decompose(parse_pattern("PATTERN SEQ(A a, B b) WITHIN 2"))
        engine = NFAEngine(d, OrderPlan(("a", "b")))
        engine.run(stream)
        assert engine.metrics.peak_partial_matches < 30
        assert engine.metrics.peak_buffered_events < 30

    def test_tree_stores_pruned_too(self):
        stream = make_stream(13, count=500, types="AB", step_low=0.2,
                             step_high=0.4)
        d = decompose(parse_pattern("PATTERN SEQ(A a, B b) WITHIN 2"))
        engine = TreeEngine(d, TreePlan(join("a", "b")))
        engine.run(stream)
        assert engine.metrics.peak_partial_matches < 40


class TestProcessIncrementally:
    def test_process_returns_only_new_matches(self):
        d = decompose(parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5"))
        engine = NFAEngine(d, OrderPlan(("a", "b")))
        stream = Stream(
            [Event("A", 1.0), Event("B", 2.0), Event("B", 3.0)]
        )
        per_event = [len(engine.process(e)) for e in stream]
        assert per_event == [0, 1, 1]

    def test_finalize_idempotent(self):
        d = decompose(parse_pattern("PATTERN SEQ(A a, C c, NOT(B b)) WITHIN 5"))
        engine = NFAEngine(d, OrderPlan(("a", "c")))
        for event in Stream([Event("A", 1.0), Event("C", 2.0)]):
            engine.process(event)
        first = engine.finalize()
        second = engine.finalize()
        assert len(first) == 1
        assert second == []


class TestTrailingNegationInterleaving:
    def test_pending_match_killed_by_late_forbidden_event(self):
        d = decompose(
            parse_pattern("PATTERN SEQ(A a, C c, NOT(B b)) WITHIN 5")
        )
        engine = NFAEngine(d, OrderPlan(("a", "c")))
        matches = []
        for event in Stream(
            [Event("A", 1.0), Event("C", 2.0), Event("B", 3.0),
             Event("A", 20.0)]
        ):
            matches.extend(engine.process(event))
        matches.extend(engine.finalize())
        assert matches == []

    def test_pending_survives_nonmatching_forbidden_event(self):
        d = decompose(
            parse_pattern(
                "PATTERN SEQ(A a, C c, NOT(B b)) WHERE b.x = a.x WITHIN 5"
            )
        )
        engine = NFAEngine(d, OrderPlan(("a", "c")))
        matches = []
        stream = Stream(
            [
                Event("A", 1.0, {"x": 1}),
                Event("C", 2.0, {"x": 1}),
                Event("B", 3.0, {"x": 2}),  # different x: no veto
                Event("A", 20.0, {"x": 9}),
            ]
        )
        for event in stream:
            matches.extend(engine.process(event))
        matches.extend(engine.finalize())
        assert len(matches) == 1

    def test_multiple_pending_with_different_deadlines(self):
        d = decompose(
            parse_pattern("PATTERN SEQ(A a, C c, NOT(B b)) WITHIN 5")
        )
        engine = NFAEngine(d, OrderPlan(("a", "c")))
        stream = Stream(
            [
                Event("A", 1.0),
                Event("C", 2.0),
                Event("A", 3.0),
                Event("C", 4.0),
                Event("Z", 30.0),
            ]
        )
        matches = []
        for event in stream:
            matches.extend(engine.process(event))
        matches.extend(engine.finalize())
        # (a@1,c@2), (a@1,c@4), (a@3,c@4) — all released, no B arrived.
        assert len(matches) == 3
        deadlines = sorted(m.detection_ts for m in matches)
        assert deadlines == [pytest.approx(6.0), pytest.approx(6.0),
                             pytest.approx(8.0)]


class TestDeterminism:
    def test_same_stream_same_metrics(self):
        stream = make_stream(21, count=100)
        d = decompose(
            parse_pattern("PATTERN SEQ(A a, B b, C c) WHERE a.x = c.x WITHIN 4")
        )
        runs = []
        for _ in range(2):
            engine = NFAEngine(d, OrderPlan(("c", "a", "b")))
            engine.run(stream)
            summary = engine.metrics.summary()
            summary.pop("mean_wall_latency")
            # Codegen counters depend on the process-global source cache
            # (the second run hits where the first generated), not on the
            # stream -- exclude them like wall-clock latency.
            summary.pop("kernels_generated", None)
            summary.pop("codegen_cache_hits", None)
            runs.append(summary)
        assert runs[0] == runs[1]
