"""Property tests for cost-model structure (monotonicity, consistency)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost import (
    NextMatchCostModel,
    ThroughputCostModel,
    subset_partial_matches,
)
from repro.plans import TreePlan, enumerate_orders
from repro.stats import PatternStatistics

MODEL = ThroughputCostModel()


def make_stats(rates, window=2.0, selectivities=None):
    sel = {frozenset(k): v for k, v in (selectivities or {}).items()}
    return PatternStatistics(tuple(rates), window, rates, sel)


@settings(max_examples=40, deadline=None)
@given(
    rate=st.floats(min_value=0.1, max_value=10.0),
    bump=st.floats(min_value=0.1, max_value=5.0),
)
def test_order_cost_monotone_in_rates(rate, bump):
    base = make_stats({"a": rate, "b": 1.0, "c": 2.0})
    bumped = make_stats({"a": rate + bump, "b": 1.0, "c": 2.0})
    for order in enumerate_orders(("a", "b", "c")):
        assert MODEL.order_cost(order.variables, base) <= MODEL.order_cost(
            order.variables, bumped
        )


@settings(max_examples=40, deadline=None)
@given(
    selectivity=st.floats(min_value=0.01, max_value=0.99),
)
def test_order_cost_monotone_in_selectivity(selectivity):
    tight = make_stats(
        {"a": 2.0, "b": 3.0}, selectivities={("a", "b"): selectivity}
    )
    loose = make_stats(
        {"a": 2.0, "b": 3.0}, selectivities={("a", "b"): 1.0}
    )
    assert MODEL.order_cost(("a", "b"), tight) <= MODEL.order_cost(
        ("a", "b"), loose
    )


@settings(max_examples=40, deadline=None)
@given(
    window=st.floats(min_value=0.5, max_value=20.0),
    factor=st.floats(min_value=1.1, max_value=3.0),
)
def test_order_cost_monotone_in_window(window, factor):
    small = make_stats({"a": 1.0, "b": 2.0}, window=window)
    large = make_stats({"a": 1.0, "b": 2.0}, window=window * factor)
    assert MODEL.order_cost(("a", "b"), small) < MODEL.order_cost(
        ("a", "b"), large
    )


@settings(max_examples=30, deadline=None)
@given(
    rates=st.lists(
        st.floats(min_value=0.1, max_value=10.0), min_size=3, max_size=3
    )
)
def test_left_deep_tree_cost_equals_order_cost_plus_leaves(rates):
    """A left-deep tree's cost = order cost + non-first leaf terms.

    Cost_tree counts every leaf (W*r each) plus the internal-node PMs,
    which for a left-deep shape are exactly the order-plan prefixes of
    length >= 2; Cost_ord counts every prefix including the first
    singleton.  Hence tree = order + sum of leaf costs except the first.
    """
    names = ("a", "b", "c")
    stats = make_stats(dict(zip(names, rates)))
    order_cost = MODEL.order_cost(names, stats)
    tree_cost = MODEL.tree_cost(TreePlan.left_deep(names), stats)
    extra_leaves = sum(
        stats.window * stats.rate(v) for v in names[1:]
    )
    assert tree_cost == pytest.approx(order_cost + extra_leaves, rel=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    rates=st.lists(
        st.floats(min_value=0.1, max_value=10.0), min_size=4, max_size=4
    )
)
def test_subset_pm_multiplicative_without_predicates(rates):
    names = ("a", "b", "c", "d")
    stats = make_stats(dict(zip(names, rates)))
    product = 1.0
    for name in names:
        product *= stats.window * stats.rate(name)
    assert subset_partial_matches(names, stats) == pytest.approx(product)


@settings(max_examples=30, deadline=None)
@given(
    rates=st.lists(
        st.floats(min_value=0.5, max_value=10.0), min_size=3, max_size=3
    )
)
def test_next_match_cost_bounded_by_any_match_cost(rates):
    """m[k] <= PM[k] when every type has >= 1 expected event per window.

    The restrictive strategy can only shrink the partial-match
    population (Section 6.2).  The bound genuinely requires W*r >= 1:
    with fractional expected counts the PM *product* drops below the
    min-rate term (hypothesis found the counter-example W*r = [2, 0.5,
    0.5]), so rates are drawn with W*r >= 1 here (W = 2).
    """
    names = ("a", "b", "c")
    stats = make_stats(dict(zip(names, rates)))
    assert all(stats.window * r >= 1.0 for r in rates)
    any_model = ThroughputCostModel()
    next_model = NextMatchCostModel()
    for order in enumerate_orders(names):
        per_window_next = next_model.order_cost(order.variables, stats)
        per_window_next /= stats.window  # strip the printed formula's W
        assert per_window_next <= any_model.order_cost(
            order.variables, stats
        ) * (1 + 1e-9)
