"""Unit tests for the ASI helpers, the reference oracle, and the public API."""

import pytest

from repro.cost.asi import (
    chain_cost,
    chain_multiplier,
    concat_cost,
    rank,
    verify_asi_exchange,
)
from repro.errors import OptimizerError


class TestChainCost:
    def test_empty_sequence(self):
        assert chain_cost([]) == 0.0
        assert chain_multiplier([]) == 1.0

    def test_hand_computed(self):
        # C([2, 3]) = 2 + 2*3 = 8; T = 6.
        assert chain_cost([2.0, 3.0]) == pytest.approx(8.0)
        assert chain_multiplier([2.0, 3.0]) == pytest.approx(6.0)

    def test_concat_law(self):
        s1, s2 = [2.0, 5.0], [0.1, 3.0]
        assert chain_cost(s1 + s2) == pytest.approx(
            concat_cost(chain_cost(s1), chain_multiplier(s1), chain_cost(s2))
        )

    def test_rank_sign(self):
        # Weights > 1 accumulate (rank > 0); weights < 1 shrink (rank < 0).
        assert rank([2.0]) > 0
        assert rank([0.5]) < 0
        assert rank([1.0]) == pytest.approx(0.0)

    def test_rank_of_empty_rejected(self):
        with pytest.raises(OptimizerError):
            rank([])

    def test_exchange_hand_case(self):
        # Two singleton modules with different ranks: the smaller-rank
        # module goes first.
        assert verify_asi_exchange([], [0.5], [4.0], [])
        assert verify_asi_exchange([2.0], [3.0], [0.1], [5.0])


class TestReferenceOracle:
    def test_window_boundary_inclusive(self):
        from repro.engines import reference_match_keys
        from repro.events import Event, Stream
        from repro.patterns import decompose, parse_pattern

        d = decompose(parse_pattern("PATTERN AND(A a, B b) WITHIN 5"))
        at_boundary = Stream([Event("A", 0.0), Event("B", 5.0)])
        beyond = Stream([Event("A", 0.0), Event("B", 5.5)])
        assert len(reference_match_keys(d, at_boundary)) == 1
        assert len(reference_match_keys(d, beyond)) == 0

    def test_distinctness_enforced(self):
        from repro.engines import reference_match_keys
        from repro.events import Event, Stream
        from repro.patterns import decompose, parse_pattern

        d = decompose(parse_pattern("PATTERN AND(A x, A y) WITHIN 5"))
        single = Stream([Event("A", 1.0)])
        assert reference_match_keys(d, single) == set()

    def test_kleene_cap_respected(self):
        from repro.engines import reference_match_keys
        from repro.events import Event, Stream
        from repro.patterns import decompose, parse_pattern

        d = decompose(parse_pattern("PATTERN SEQ(A a, KL(B b)) WITHIN 9"))
        stream = Stream(
            [Event("A", 0.0)] + [Event("B", 1.0 + i) for i in range(4)]
        )
        capped = reference_match_keys(d, stream, max_kleene_size=2)
        # 4 singletons + C(4,2) = 6 pairs.
        assert len(capped) == 10


class TestPublicApi:
    def test_top_level_all_resolves(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_resolves(self):
        import importlib

        for module_name in (
            "repro.events",
            "repro.patterns",
            "repro.stats",
            "repro.cost",
            "repro.plans",
            "repro.optimizers",
            "repro.engines",
            "repro.join",
            "repro.adaptive",
            "repro.workloads",
            "repro.bench",
        ):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                assert hasattr(module, name), f"{module_name}.{name}"

    def test_version(self):
        import repro

        assert repro.__version__ == "1.10.0"

    def test_quickstart_snippet_from_docstring(self):
        # The module docstring's quickstart must actually run.
        from repro import (
            build_engines,
            estimate_pattern_catalog,
            parse_pattern,
            plan_pattern,
        )
        from repro.workloads import StockMarketConfig, generate_stock_stream

        stream = generate_stock_stream(
            StockMarketConfig(symbols=3, duration=60.0, seed=1)
        )
        pattern = parse_pattern(
            "PATTERN SEQ(MSFT m, GOOG g, INTC i) "
            "WHERE m.difference < g.difference WITHIN 10"
        )
        catalog = estimate_pattern_catalog(pattern, stream, samples=200)
        planned = plan_pattern(pattern, catalog, algorithm="DP-LD")
        engine = build_engines(planned)
        matches = engine.run(stream)
        assert isinstance(matches, list)
        assert engine.metrics.events_processed == len(stream)
