"""Out-of-order and updatable streams (:mod:`repro.streams.disorder`).

The core property throughout: the **net** match multiset of a
disordered, corrected run — plain matches plus revision records minus
retraction records — must be byte-identical (canonical seq-free
fingerprints) to a clean ordered run over the corrected stream.  The
seeded fuzz matrix checks it across both runtimes (NFA via order plans,
tree via ZSTREAM), the shared multi-query engine, indexed and linear
stores, compiled and interpreted predicates, and batch feeding; the
delta tests check it for retractions (including negation resurrection),
payload updates, and late events under the ``"revise"`` policy.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro import (
    DeltaEngine,
    DisorderBuffer,
    DisorderError,
    MatchRetraction,
    MatchRevision,
    ParallelConfig,
    ParallelExecutor,
    Retraction,
    Update,
    build_engines,
    net_fingerprints,
    net_matches,
    parse_pattern,
    plan_pattern,
    plan_workload,
)
from repro.engines.metrics import EngineMetrics
from repro.events import Event, Stream, StreamOrderError
from repro.multiquery import Workload
from repro.multiquery.executor import MultiQueryEngine
from repro.service import Ingestor
from repro.stats import StatisticsCatalog, estimate_pattern_catalog

SEQ3 = "PATTERN SEQ(A a, B b, C c) WHERE a.x <= b.x AND b.x <= c.x WITHIN 1.0"
NEG = "PATTERN SEQ(A a, NOT(B nb), C c) WITHIN 1.0"
WORKLOAD = (
    "PATTERN SEQ(A a, B b) WHERE a.x < b.x WITHIN 1.0",
    "PATTERN SEQ(A p, B q, C r) WHERE p.x < q.x WITHIN 1.0",
)


def make_events(seed: int, count: int = 150, types: str = "ABC") -> list:
    rng = random.Random(seed)
    events, t = [], 0.0
    for _ in range(count):
        t += rng.uniform(0.01, 0.09)
        events.append(Event(rng.choice(types), t, {"x": rng.randint(0, 5)}))
    return events


def planned_for(text: str, events: list, algorithm: str = "GREEDY"):
    pattern = parse_pattern(text)
    catalog = estimate_pattern_catalog(pattern, Stream(list(events)))
    return plan_pattern(pattern, catalog, algorithm=algorithm)


def shared_plan_for(events: list):
    workload = Workload(list(WORKLOAD))
    catalogs = {
        name: StatisticsCatalog(
            {t: 1.0 for t in pattern.variable_types().values()}
        )
        for name, pattern in workload.items()
    }
    return plan_workload(workload, catalogs)


def clean_run(build_fn, events: list) -> list:
    """Ordered reference run: fingerprints of the final match set."""
    engine = build_fn()
    out = []
    for i, event in enumerate(events):
        out.extend(engine.process(event.with_seq(i)))
    out.extend(engine.finalize())
    return net_fingerprints(out)


def shuffle_within(events: list, rng: random.Random, max_delay: float) -> list:
    """Bounded-displacement shuffle: each event jitters forward by less
    than ``max_delay`` of stream time, so no event is late for a buffer
    with that bound."""
    jittered = [
        (event.timestamp + rng.uniform(0.0, max_delay * 0.95), i)
        for i, event in enumerate(events)
    ]
    return [events[i] for _, i in sorted(jittered)]


# ---------------------------------------------------------------------------
# DisorderBuffer mechanics
# ---------------------------------------------------------------------------

class TestDisorderBuffer:
    def test_releases_in_timestamp_order_behind_the_watermark(self):
        buffer = DisorderBuffer(1.0)
        released = []
        for ts in (0.0, 2.0, 1.5, 0.5):
            # 0.5 is within the bound of max_ts=2.0 (watermark 1.0)? No:
            # 0.5 < 1.0 would be late; use ordered tail instead.
            if ts == 0.5:
                continue
            released.extend(buffer.offer(ts, ts).released)
        assert released == [0.0]  # watermark 1.0 frees only t=0
        released.extend(buffer.offer(3.0, 3.0).released)
        assert released == [0.0, 1.5, 2.0]  # watermark 2.0, in ts order

    def test_zero_delay_is_passthrough(self):
        buffer = DisorderBuffer(0.0)
        for i, ts in enumerate((0.0, 0.5, 0.5, 1.0)):
            result = buffer.offer(ts, i)
            assert result.released == [i]  # released immediately, FIFO ties
        assert len(buffer) == 0

    def test_strict_raises_beyond_the_bound(self):
        buffer = DisorderBuffer(0.5, late_policy="strict")
        buffer.offer(2.0, "a")
        with pytest.raises(StreamOrderError, match="arrives before"):
            buffer.offer(1.0, "late")

    def test_drop_counts_and_skips(self):
        metrics = EngineMetrics()
        buffer = DisorderBuffer(0.5, late_policy="drop", metrics=metrics)
        buffer.offer(2.0, "a")
        result = buffer.offer(1.0, "late")
        assert result.dropped and result.late == "late"
        assert metrics.events_late_dropped == 1
        assert metrics.watermark_lag.count == 2  # every arrival records

    def test_reordered_counter_and_lag_histogram(self):
        metrics = EngineMetrics()
        buffer = DisorderBuffer(1.0, metrics=metrics)
        buffer.offer(1.0, "a")
        buffer.offer(0.5, "b")  # behind the frontier but within bound
        assert metrics.events_reordered == 1
        assert metrics.watermark_lag.max == pytest.approx(0.5)

    def test_flush_releases_remainder_in_order(self):
        buffer = DisorderBuffer(10.0)
        for ts in (3.0, 1.0, 2.0):
            buffer.offer(ts, ts)
        assert buffer.flush() == [1.0, 2.0, 3.0]

    def test_discard_removes_a_buffered_item(self):
        buffer = DisorderBuffer(10.0)
        buffer.offer(1.0, "a")
        buffer.offer(2.0, "b")
        assert buffer.discard("a")
        assert not buffer.discard("a")
        assert buffer.flush() == ["b"]

    def test_validation(self):
        with pytest.raises(DisorderError, match="max_delay"):
            DisorderBuffer(-1.0)
        with pytest.raises(DisorderError, match="late_policy"):
            DisorderBuffer(1.0, late_policy="hope")


# ---------------------------------------------------------------------------
# Net-match identity under bounded disorder (the fuzz matrix)
# ---------------------------------------------------------------------------

class TestDisorderIdentity:
    @pytest.mark.parametrize("algorithm", ("GREEDY", "ZSTREAM"))
    @pytest.mark.parametrize("indexed", (True, False))
    @pytest.mark.parametrize("compiled", (True, False))
    @pytest.mark.parametrize("seed", (3, 7))
    def test_single_query_runtimes(self, algorithm, indexed, compiled, seed):
        events = make_events(seed)
        planned = planned_for(SEQ3, events, algorithm)
        build = lambda: build_engines(  # noqa: E731
            planned, indexed=indexed, compiled=compiled
        )
        clean = clean_run(build, events)
        shuffled = shuffle_within(events, random.Random(seed + 100), 0.3)
        delta = DeltaEngine(build, max_delay=0.3, late_policy="strict")
        assert net_fingerprints(delta.run(shuffled)) == clean
        assert delta.net_fingerprints() == clean
        assert delta.metrics.events_reordered > 0

    @pytest.mark.parametrize("seed", (5, 11))
    def test_multi_query_engine(self, seed):
        events = make_events(seed)
        plan = shared_plan_for(events)
        build = lambda: MultiQueryEngine(plan)  # noqa: E731
        clean = clean_run(build, events)
        shuffled = shuffle_within(events, random.Random(seed), 0.25)
        delta = DeltaEngine(build, max_delay=0.25)
        assert net_fingerprints(delta.run(shuffled)) == clean

    def test_batch_feeding_is_equivalent(self):
        events = make_events(13)
        planned = planned_for(SEQ3, events)
        build = lambda: build_engines(planned)  # noqa: E731
        clean = clean_run(build, events)
        shuffled = shuffle_within(events, random.Random(13), 0.2)
        delta = DeltaEngine(build, max_delay=0.2)
        out = []
        for start in range(0, len(shuffled), 32):
            out.extend(delta.process_batch(shuffled[start:start + 32]))
        out.extend(delta.finalize())
        assert net_fingerprints(out) == clean

    def test_zero_delay_ordered_stream_is_unchanged(self):
        # max_delay=0 on an already-ordered stream: pure pass-through,
        # no replays, no deltas — the wrapper must be invisible.
        events = make_events(17)
        planned = planned_for(SEQ3, events)
        build = lambda: build_engines(planned)  # noqa: E731
        clean = clean_run(build, events)
        delta = DeltaEngine(build, max_delay=0.0, late_policy="strict")
        out = delta.run(events)
        assert all(
            not isinstance(item, (MatchRetraction, MatchRevision))
            for item in out
        )
        assert net_fingerprints(out) == clean
        assert delta.metrics.events_reordered == 0
        assert delta.metrics.retractions_processed == 0

    def test_late_revise_rederives(self):
        events = make_events(19)
        planned = planned_for(SEQ3, events)
        build = lambda: build_engines(planned)  # noqa: E731
        clean = clean_run(build, events)
        shuffled = shuffle_within(events, random.Random(19), 0.3)
        delta = DeltaEngine(build, max_delay=0.03, late_policy="revise")
        assert net_fingerprints(delta.run(shuffled)) == clean

    def test_late_drop_drops(self):
        events = make_events(23)
        planned = planned_for(SEQ3, events)
        build = lambda: build_engines(planned)  # noqa: E731
        shuffled = shuffle_within(events, random.Random(23), 0.3)
        delta = DeltaEngine(build, max_delay=0.03, late_policy="drop")
        delta.run(shuffled)
        dropped = delta.metrics.events_late_dropped
        assert dropped > 0
        # The net set matches a clean run over the *kept* events.
        # Reconstruct them: replay the buffer decision sequence.
        probe = DisorderBuffer(0.03, late_policy="drop")
        kept = []
        for event in shuffled:
            if probe.offer(event.timestamp, event).late is None:
                kept.append(event)
        kept.sort(key=lambda e: e.timestamp)
        assert len(shuffled) - len(kept) == dropped
        assert delta.net_fingerprints() == clean_run(build, kept)


# ---------------------------------------------------------------------------
# Retraction / update deltas
# ---------------------------------------------------------------------------

class TestRetractionDeltas:
    @pytest.mark.parametrize("algorithm", ("GREEDY", "ZSTREAM"))
    @pytest.mark.parametrize("target", (10, 20, 77))
    def test_retract_equals_rerun_without_the_event(self, algorithm, target):
        events = make_events(31)
        planned = planned_for(SEQ3, events, algorithm)
        build = lambda: build_engines(planned)  # noqa: E731
        remaining = [e for i, e in enumerate(events) if i != target]
        clean = clean_run(build, remaining)
        delta = DeltaEngine(build)
        out = delta.process_batch(events)
        out.extend(delta.process(Retraction(target)))
        out.extend(delta.finalize())
        assert net_fingerprints(out) == clean
        assert delta.metrics.retractions_processed == 1

    def test_retractions_emit_typed_records(self):
        events = make_events(37)
        planned = planned_for(SEQ3, events)
        build = lambda: build_engines(planned)  # noqa: E731
        delta = DeltaEngine(build)
        delta.process_batch(events)
        # Retract an A that participates in at least one emitted match.
        bound = {
            uids[0]
            for key in delta._emitted
            for _, uids in key[1]
        }
        target = min(bound)
        before = len(delta.matches)
        out = delta.process(Retraction(target))
        assert out and all(isinstance(r, MatchRetraction) for r in out)
        assert len(delta.matches) == before - len(out)
        assert delta.metrics.matches_retracted == len(out)
        assert {r.cause for r in out} == {"retraction"}

    def test_negation_relevant_retraction_resurrects_matches(self):
        events = make_events(41)
        planned = planned_for(NEG, events)
        build = lambda: build_engines(planned)  # noqa: E731
        base = clean_run(build, events)
        # Find a B whose removal resurrects at least one match.
        target, clean, remaining = None, None, None
        for i, e in enumerate(events):
            if e.type != "B":
                continue
            candidate = [ev for j, ev in enumerate(events) if j != i]
            fingerprints = clean_run(build, candidate)
            if len(fingerprints) > len(base):
                target, clean, remaining = i, fingerprints, candidate
                break
        assert target is not None  # the stream has a suppressing B
        delta = DeltaEngine(build)
        out = delta.process_batch(events)
        out.extend(delta.process(Retraction(target)))
        revisions = [r for r in out if isinstance(r, MatchRevision)]
        assert revisions  # resurrected matches surface as revisions
        out.extend(delta.finalize())
        assert net_fingerprints(out) == clean

    @pytest.mark.parametrize("target", (10, 50))
    def test_update_equals_rerun_with_new_payload(self, target):
        events = make_events(43)
        planned = planned_for(SEQ3, events)
        build = lambda: build_engines(planned)  # noqa: E731
        corrected = list(events)
        corrected[target] = Event(
            events[target].type, events[target].timestamp, {"x": 0}
        )
        clean = clean_run(build, corrected)
        delta = DeltaEngine(build)
        out = delta.process_batch(events)
        out.extend(delta.process(Update(target, {"x": 0})))
        out.extend(delta.finalize())
        assert net_fingerprints(out) == clean

    def test_retract_while_still_buffered(self):
        events = make_events(47)
        planned = planned_for(SEQ3, events)
        build = lambda: build_engines(planned)  # noqa: E731
        delta = DeltaEngine(build, max_delay=100.0)  # everything buffered
        delta.process_batch(events[:10])
        out = delta.process(Retraction(5))
        assert out == []
        remaining = [e for i, e in enumerate(events[:10]) if i != 5]
        delta.finalize()
        assert delta.net_fingerprints() == clean_run(build, remaining)

    def test_unknown_uid_is_a_typed_error(self):
        planned = planned_for(SEQ3, make_events(3))
        delta = DeltaEngine(lambda: build_engines(planned))
        with pytest.raises(DisorderError, match="unknown"):
            delta.process(Retraction(99))
        delta.process(Event("A", 1.0, {"x": 1}))
        delta.process(Retraction(0))
        with pytest.raises(DisorderError, match="retracted"):
            delta.process(Retraction(0))

    def test_net_matches_folds_retractions(self):
        events = make_events(53)
        planned = planned_for(SEQ3, events)
        delta = DeltaEngine(lambda: build_engines(planned))
        out = delta.process_batch(events)
        bound = {
            uids[0] for key in delta._emitted for _, uids in key[1]
        }
        out.extend(delta.process(Retraction(min(bound))))
        out.extend(delta.finalize())
        folded = net_matches(out)
        assert sorted(
            net_fingerprints(folded)
        ) == delta.net_fingerprints()

    def test_consuming_selection_is_refused(self):
        events = make_events(3)
        pattern = parse_pattern(SEQ3)
        catalog = estimate_pattern_catalog(pattern, Stream(list(events)))
        planned = plan_pattern(
            pattern, catalog, algorithm="GREEDY", selection="next"
        )
        with pytest.raises(DisorderError, match="skip-till-any-match"):
            DeltaEngine(lambda: build_engines(planned))

    def test_finalized_engine_refuses_further_items(self):
        planned = planned_for(SEQ3, make_events(3))
        delta = DeltaEngine(lambda: build_engines(planned))
        delta.finalize()
        with pytest.raises(DisorderError, match="finalized"):
            delta.process(Event("A", 1.0, {}))

    def test_multiquery_retraction(self):
        events = make_events(59)
        plan = shared_plan_for(events)
        build = lambda: MultiQueryEngine(plan)  # noqa: E731
        remaining = [e for i, e in enumerate(events) if i != 30]
        clean = clean_run(build, remaining)
        delta = DeltaEngine(build)
        out = delta.process_batch(events)
        out.extend(delta.process(Retraction(30)))
        out.extend(delta.finalize())
        assert net_fingerprints(out) == clean


# ---------------------------------------------------------------------------
# Service front door: watermark-aware ingestion
# ---------------------------------------------------------------------------

def keyed_events(seed: int, count: int = 200, keys: int = 4) -> list:
    rng = random.Random(seed)
    events, t = [], 0.0
    for _ in range(count):
        t += rng.uniform(0.01, 0.09)
        events.append(
            Event(
                rng.choice("ABC"),
                t,
                {"k": rng.randrange(keys), "v": rng.random()},
            )
        )
    return events


KEYED = "PATTERN SEQ(A a, B b) WHERE a.k = b.k WITHIN 1.0"


class TestIngestorDisorder:
    def _executor(self, events):
        pattern = parse_pattern(KEYED)
        catalog = estimate_pattern_catalog(pattern, Stream(list(events)))
        planned = plan_pattern(pattern, catalog, algorithm="GREEDY")
        config = ParallelConfig(
            workers=2, partitioner="key", backend="serial", batch_size=16
        )
        return planned, ParallelExecutor(planned, config)

    def test_out_of_order_within_bound_matches_ordered_run(self):
        events = keyed_events(61)
        planned, executor = self._executor(events)
        shuffled = shuffle_within(events, random.Random(61), 0.3)

        async def main():
            async with Ingestor(
                executor, flush_seconds=0.01, max_delay=0.3
            ) as ingestor:
                collected = []

                async def consume():
                    async for match in ingestor.matches():
                        collected.append(match)

                consumer = asyncio.create_task(consume())
                for event in shuffled:
                    await ingestor.put(event)
                await ingestor.close()
                await consumer
                return collected, ingestor

        collected, ingestor = asyncio.run(main())
        executor.close()
        serial = build_engines(planned).run(Stream(list(events)))
        assert net_fingerprints(collected) == net_fingerprints(serial)
        assert ingestor.disorder.events_reordered > 0
        assert ingestor.metrics.events_reordered > 0
        assert ingestor.metrics.watermark_lag.count == len(events)

    def test_beyond_bound_strict_raises(self):
        events = keyed_events(67, count=20)
        _, executor = self._executor(events)

        async def main():
            async with Ingestor(executor, max_delay=0.1) as ingestor:
                await ingestor.put(Event("A", 5.0, {"k": 1, "v": 0.5}))
                with pytest.raises(StreamOrderError, match="arrives before"):
                    await ingestor.put(Event("B", 1.0, {"k": 1, "v": 0.5}))
                await ingestor.close()

        asyncio.run(main())
        executor.close()

    def test_beyond_bound_drop_policy_sheds_and_counts(self):
        events = keyed_events(71, count=30)
        _, executor = self._executor(events)

        async def main():
            async with Ingestor(
                executor, max_delay=0.1, late_policy="drop"
            ) as ingestor:
                await ingestor.put(Event("A", 5.0, {"k": 1, "v": 0.5}))
                accepted = await ingestor.put(
                    Event("B", 1.0, {"k": 1, "v": 0.5})
                )
                assert accepted is False
                assert ingestor.disorder.events_late_dropped == 1
                assert ingestor.events_in == 0  # still held at the buffer
                await ingestor.close()
                assert ingestor.events_in == 1  # no seq burned on a drop

        asyncio.run(main())
        executor.close()

    def test_close_flushes_the_reorder_buffer(self):
        events = keyed_events(73, count=60)
        planned, executor = self._executor(events)

        async def main():
            # A bound wider than the stream: every event is still
            # buffered at close; the flush must release them all.
            async with Ingestor(executor, max_delay=1e9) as ingestor:
                collected = []

                async def consume():
                    async for match in ingestor.matches():
                        collected.append(match)

                consumer = asyncio.create_task(consume())
                for event in reversed(events):  # fully reversed arrival
                    await ingestor.put(event)
                assert ingestor.events_in == 0  # nothing released yet
                await ingestor.close()
                await consumer
                assert ingestor.events_in == len(events)
                return collected

        collected = asyncio.run(main())
        executor.close()
        serial = build_engines(planned).run(Stream(list(events)))
        assert net_fingerprints(collected) == net_fingerprints(serial)

    def test_shed_at_release_reconciles_provisional_accepts(self):
        # Under backpressure="shed" with a nonzero bound, put() returning
        # True is provisional for buffered events: a watermark release
        # into a full queue still sheds them, and shed_at_release is the
        # counter that lets exactly-once accounting reconcile.
        events = keyed_events(83, count=60)
        _, executor = self._executor(events)

        async def main():
            async with Ingestor(
                executor,
                max_pending=4,
                backpressure="shed",
                max_delay=1e9,  # everything buffered until close()
                late_policy="drop",
            ) as ingestor:
                accepted = 0
                for event in events:
                    accepted += await ingestor.put(event)
                assert accepted == len(events)  # all provisionally taken
                assert ingestor.shed == 0  # nothing released yet
                await ingestor.close()
                # The close-time flush releases the whole buffer into the
                # bounded queue without yielding to the pump, so only
                # max_pending fit; the rest shed after their True put().
                assert ingestor.shed > 0
                assert ingestor.shed_at_release == ingestor.shed
                assert (
                    ingestor.events_in + ingestor.shed_at_release
                    == accepted
                )

        asyncio.run(main())
        executor.close()

    def test_revise_policy_is_rejected_at_the_front_door(self):
        events = keyed_events(79, count=10)
        _, executor = self._executor(events)
        from repro.errors import ParallelError

        with pytest.raises(ParallelError, match="late policy"):
            Ingestor(executor, late_policy="revise")
        executor.close()
