"""Tests for the cost models of Sections 4.1/4.2, 6.1 and 6.2."""

import pytest

from repro.cost import (
    HybridCostModel,
    LatencyCostModel,
    NextMatchCostModel,
    ThroughputCostModel,
    disjunction_latency,
    latency_model_for,
    prefix_partial_matches,
    subset_next_matches,
    subset_partial_matches,
)
from repro.errors import StatisticsError
from repro.patterns import decompose, parse_pattern
from repro.plans import TreePlan, join
from repro.stats import PatternStatistics, StatisticsCatalog


def simple_stats(
    rates=None, selectivities=None, window=2.0
) -> PatternStatistics:
    rates = rates or {"a": 3.0, "b": 1.0, "c": 2.0}
    sel = {}
    for key, value in (selectivities or {}).items():
        sel[frozenset(key)] = value
    return PatternStatistics(tuple(rates), window, rates, sel)


class TestSubsetPartialMatches:
    def test_hand_computed(self):
        stats = simple_stats(selectivities={("a", "b"): 0.5})
        # PM({a}) = W*r_a = 6;  PM({a,b}) = 6 * (2*1) * 0.5 = 6.
        assert subset_partial_matches(["a"], stats) == pytest.approx(6.0)
        assert subset_partial_matches(["a", "b"], stats) == pytest.approx(6.0)

    def test_order_independent(self):
        stats = simple_stats(selectivities={("a", "c"): 0.1})
        fwd = subset_partial_matches(["a", "b", "c"], stats)
        rev = subset_partial_matches(["c", "b", "a"], stats)
        assert fwd == pytest.approx(rev)


class TestThroughputOrderCost:
    def test_formula_section_4_1(self):
        stats = simple_stats(
            selectivities={("a", "b"): 0.5, ("b", "c"): 0.25}
        )
        # W=2: PM1 = 6; PM2 = 6*2*0.5 = 6; PM3 = 6*2*4*0.25*... compute:
        # PM3 = W^3 * ra*rb*rc * sel_ab * sel_bc = 8*6*0.125 = 6.
        model = ThroughputCostModel()
        cost = model.order_cost(("a", "b", "c"), stats)
        pms = prefix_partial_matches(("a", "b", "c"), stats)
        assert pms == pytest.approx([6.0, 6.0, 6.0])
        assert cost == pytest.approx(18.0)

    def test_step_cost_sums_to_order_cost(self):
        stats = simple_stats(selectivities={("a", "c"): 0.3})
        model = ThroughputCostModel()
        order = ("c", "a", "b")
        total = 0.0
        prefix = frozenset()
        for variable in order:
            total += model.order_step_cost(prefix, variable, stats)
            prefix = prefix | {variable}
        assert total == pytest.approx(model.order_cost(order, stats))

    def test_selective_pair_beats_rate_ordering(self):
        # With a near-rare b but a *very* restrictive a-c predicate, the
        # plan exploiting the predicate first wins — the effect EFREQ
        # cannot see (Section 7.1).
        stats = simple_stats(
            rates={"a": 10.0, "b": 5.0, "c": 10.0},
            selectivities={("a", "c"): 0.01},
        )
        model = ThroughputCostModel()
        rare_first = model.order_cost(("b", "a", "c"), stats)
        selective_first = model.order_cost(("a", "c", "b"), stats)
        assert selective_first < rare_first

    def test_rare_event_first_wins_without_selectivities(self):
        # Without restrictive predicates the ascending-rate order is
        # optimal — the regime where EFREQ shines.
        stats = simple_stats(rates={"a": 10.0, "b": 0.1, "c": 10.0})
        model = ThroughputCostModel()
        assert model.order_cost(("b", "a", "c"), stats) < model.order_cost(
            ("a", "c", "b"), stats
        )


class TestThroughputTreeCost:
    def test_left_deep_tree_matches_node_sums(self):
        stats = simple_stats(selectivities={("a", "b"): 0.5})
        model = ThroughputCostModel()
        plan = TreePlan.left_deep(("a", "b", "c"))
        # leaves: 6 + 2 + 4 = 12; internal: PM(ab) = 4*3*1*0.5 = 6,
        # PM(abc) = 8*3*1*2*0.5 = 24.
        assert model.tree_cost(plan, stats) == pytest.approx(42.0)

    def test_bushy_vs_left_deep(self):
        stats = simple_stats(
            rates={"a": 5.0, "b": 5.0, "c": 0.2, "d": 0.2},
            selectivities={("a", "b"): 0.01, ("c", "d"): 0.01},
        )
        model = ThroughputCostModel()
        bushy = TreePlan(join(join("a", "b"), join("c", "d")))
        left = TreePlan.left_deep(("a", "b", "c", "d"))
        assert model.tree_cost(bushy, stats) < model.tree_cost(left, stats)


class TestNextMatchCost:
    def test_min_rate_bound(self):
        stats = simple_stats(rates={"a": 10.0, "b": 0.5, "c": 2.0})
        assert subset_next_matches(["a", "b"], stats) == pytest.approx(
            2.0 * 0.5
        )

    def test_order_cost_incremental_matches_generic(self):
        stats = simple_stats(
            rates={"a": 4.0, "b": 1.0, "c": 2.0},
            selectivities={("a", "b"): 0.5},
        )
        model = NextMatchCostModel()
        order = ("a", "b", "c")
        generic = 0.0
        prefix = frozenset()
        for variable in order:
            generic += model.order_step_cost(prefix, variable, stats)
            prefix = prefix | {variable}
        assert model.order_cost(order, stats) == pytest.approx(generic)

    def test_next_cost_below_any_cost(self):
        stats = simple_stats(rates={"a": 5.0, "b": 5.0, "c": 5.0})
        any_model = ThroughputCostModel()
        next_model = NextMatchCostModel()
        order = ("a", "b", "c")
        # m[k] <= PM[k] always (min <= product of the others), and the
        # printed formula multiplies by W; compare per-window quantities.
        assert next_model.order_cost(order, stats) / stats.window <= (
            any_model.order_cost(order, stats)
        )


class TestLatencyCost:
    def test_order_cost_counts_successors(self):
        stats = simple_stats(rates={"a": 3.0, "b": 1.0, "c": 2.0})
        model = LatencyCostModel("b")
        # b last -> no successors -> zero latency cost.
        assert model.order_cost(("a", "c", "b"), stats) == 0.0
        # b first -> successors a, c -> W*(3+2) = 10.
        assert model.order_cost(("b", "a", "c"), stats) == pytest.approx(10.0)

    def test_tree_cost_counts_sibling_pms(self):
        stats = simple_stats(rates={"a": 3.0, "b": 1.0, "c": 2.0})
        model = LatencyCostModel("c")
        plan = TreePlan(join(join("a", "b"), "c"))
        # path: leaf c -> root. sibling of c's path node = (a ⋈ b).
        expected = subset_partial_matches(["a", "b"], stats)
        assert model.tree_cost(plan, stats) == pytest.approx(expected)

    def test_tree_cost_deeper_leaf(self):
        stats = simple_stats(rates={"a": 3.0, "b": 1.0, "c": 2.0})
        model = LatencyCostModel("a")
        plan = TreePlan(join(join("a", "b"), "c"))
        # siblings along a's path: leaf b, then leaf c.
        expected = 2.0 * 1.0 + 2.0 * 2.0
        assert model.tree_cost(plan, stats) == pytest.approx(expected)

    def test_latency_model_for_sequence(self):
        d = decompose(parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5"))
        assert latency_model_for(d).last_variable == "b"

    def test_latency_model_for_conjunction_needs_hint(self):
        d = decompose(parse_pattern("PATTERN AND(A a, B b) WITHIN 5"))
        with pytest.raises(StatisticsError):
            latency_model_for(d)
        assert latency_model_for(d, "a").last_variable == "a"

    def test_disjunction_latency_is_max(self):
        assert disjunction_latency([1.0, 5.0, 3.0]) == 5.0
        with pytest.raises(StatisticsError):
            disjunction_latency([])


class TestHybridCost:
    def test_alpha_zero_equals_throughput(self):
        stats = simple_stats(selectivities={("a", "b"): 0.5})
        hybrid = HybridCostModel(0.0, "c")
        throughput = ThroughputCostModel()
        order = ("b", "c", "a")
        assert hybrid.order_cost(order, stats) == pytest.approx(
            throughput.order_cost(order, stats)
        )

    def test_weighted_sum(self):
        stats = simple_stats()
        alpha = 0.5
        hybrid = HybridCostModel(alpha, "b")
        throughput = ThroughputCostModel()
        latency = LatencyCostModel("b")
        order = ("b", "a", "c")
        assert hybrid.order_cost(order, stats) == pytest.approx(
            throughput.order_cost(order, stats)
            + alpha * latency.order_cost(order, stats)
        )

    def test_tree_weighted_sum(self):
        stats = simple_stats(selectivities={("a", "c"): 0.2})
        plan = TreePlan(join(join("a", "c"), "b"))
        hybrid = HybridCostModel(2.0, "a")
        assert hybrid.tree_cost(plan, stats) == pytest.approx(
            ThroughputCostModel().tree_cost(plan, stats)
            + 2.0 * LatencyCostModel("a").tree_cost(plan, stats)
        )

    def test_higher_alpha_prefers_last_var_late(self):
        stats = simple_stats(
            rates={"a": 10.0, "b": 1.0, "c": 5.0},
            selectivities={("a", "c"): 0.05},
        )
        from repro.optimizers import DPLeftDeep
        from repro.patterns import decompose, parse_pattern

        d = decompose(parse_pattern("PATTERN SEQ(A a, B b, C c) WITHIN 2"))
        latencies = []
        for alpha in (0.0, 10.0):
            model = HybridCostModel(alpha, "c")
            plan = DPLeftDeep().generate(d, stats, model)
            latencies.append(
                LatencyCostModel("c").order_cost(plan.variables, stats)
            )
        assert latencies[1] <= latencies[0]

    def test_negative_alpha_rejected(self):
        with pytest.raises(StatisticsError):
            HybridCostModel(-1.0, "a")
