"""The always-on service runtime (:mod:`repro.service`).

The load-bearing assertions are byte-identity ones: persistent
sessions, incremental streaming (with its canonical-order safety
frontier), socket-distributed shards, crash recovery, and the asyncio
ingestor must all reproduce exactly the match records of the
single-threaded interpreted engine.  Around those sit the mechanics:
the epoch-stamped worker protocol, backpressure policies, and the
cross-process snapshot round trip backing crash reseeding.
"""

from __future__ import annotations

import asyncio
import os
import pickle
import random
import socket
import struct
import subprocess
import sys

import pytest

from repro import (
    ParallelConfig,
    ParallelError,
    ParallelExecutor,
    Stream,
    build_engines,
    canonical_order,
    estimate_pattern_catalog,
    parse_pattern,
    plan_pattern,
)
from repro.errors import WorkerCrashError
from repro.events import Event
from repro.parallel import EngineSpec, match_records
from repro.service import Ingestor, serve_in_thread
from repro.service.protocol import (
    MSG_BATCH,
    MSG_FINISH,
    MSG_INIT,
    MSG_RESET,
    REPLY_ACK,
    REPLY_DONE,
    REPLY_ERROR,
    FrameDecoder,
    WorkerState,
    recv_frame,
    send_frame,
)
from repro.service.transport import SocketChannel

KEYED = "PATTERN SEQ(A a, B b, C c) WHERE a.k = b.k AND b.k = c.k WITHIN 1.5"
THETA = "PATTERN SEQ(A a, B b, C c) WHERE a.v < b.v AND b.v < c.v WITHIN 0.9"
NEG_TRAIL = "PATTERN SEQ(A a, B b, NOT(D d)) WHERE a.v < b.v WITHIN 1.2"


def mixed_stream(seed: int, count: int = 300, keys: int = 5) -> Stream:
    rng = random.Random(seed)
    events, t = [], 0.0
    for _ in range(count):
        t += rng.uniform(0.01, 0.09)
        events.append(
            Event(
                rng.choice("ABCD"),
                t,
                {"k": rng.randrange(keys), "v": rng.random()},
            )
        )
    return Stream(events)


def plans_for(text: str, stream: Stream, algorithm: str = "GREEDY"):
    pattern = parse_pattern(text)
    catalog = estimate_pattern_catalog(pattern, stream)
    return plan_pattern(pattern, catalog, algorithm=algorithm)


def serial_records(planned, stream):
    return match_records(canonical_order(build_engines(planned).run(stream)))


class TestWorkerProtocol:
    def runner_state(self, stream):
        planned = plans_for(KEYED, stream)
        state = WorkerState(worker_id=0)
        assert state.handle((MSG_INIT, EngineSpec.from_planned(planned)))[0][
            1
        ] == "ready"
        return state

    def test_stale_epoch_batches_are_dropped_without_ack(self):
        stream = mixed_stream(3, count=60)
        state = self.runner_state(stream)
        state.handle((MSG_RESET, 2, {"mode": "single"}))
        entries = [(0, event) for event in stream]
        assert state.handle((MSG_BATCH, 1, 0, entries)) == []  # stale
        (reply,) = state.handle((MSG_BATCH, 2, 0, entries))
        assert reply[1] == REPLY_ACK and reply[2][0] == 2
        (done,) = state.handle((MSG_FINISH, 2))
        assert done[1] == REPLY_DONE

    def test_finish_at_wrong_epoch_is_an_error(self):
        stream = mixed_stream(3, count=20)
        state = self.runner_state(stream)
        state.handle((MSG_RESET, 5, {"mode": "single"}))
        with pytest.raises(RuntimeError, match="epoch"):
            state.handle((MSG_FINISH, 4))

    def test_acks_carry_incremental_matches_only(self):
        stream = mixed_stream(11, count=200)
        planned = plans_for(KEYED, stream)
        state = self.runner_state(stream)
        state.handle((MSG_RESET, 1, {"mode": "single"}))
        events = list(stream)
        collected = []
        for start in (0, 100):
            (ack,) = state.handle(
                (
                    MSG_BATCH,
                    1,
                    start,
                    [(0, e) for e in events[start : start + 100]],
                )
            )
            collected.extend(ack[2][2])
        (done,) = state.handle((MSG_FINISH, 1))
        collected.extend(done[2][1].matches)
        assert match_records(canonical_order(collected)) == serial_records(
            planned, stream
        )
        # The final result's metrics still count every kept match.
        assert done[2][1].metrics.matches_emitted == len(collected)


class TestPersistentSessions:
    @pytest.mark.parametrize("backend", ("serial", "threads", "processes"))
    def test_repeated_runs_reuse_the_worker_pool(self, backend):
        stream = mixed_stream(7, count=250)
        planned = plans_for(KEYED, stream)
        expected = serial_records(planned, stream)
        with ParallelExecutor(
            planned,
            ParallelConfig(
                workers=2, partitioner="key", backend=backend, batch_size=64
            ),
        ) as executor:
            first = executor.run(stream)
            channels = list(executor.session().pool._channels)
            second = executor.run(stream)
            assert match_records(first) == expected
            assert match_records(second) == expected
            # Same channel objects: nothing was respawned between runs.
            assert executor.session().pool._channels == channels
            assert executor.metrics.worker_count == 2

    def test_close_then_run_restarts_cleanly(self):
        stream = mixed_stream(19, count=120)
        planned = plans_for(KEYED, stream)
        executor = ParallelExecutor(
            planned,
            ParallelConfig(workers=2, partitioner="key", backend="threads"),
        )
        assert match_records(executor.run(stream)) == serial_records(
            planned, stream
        )
        executor.close()
        assert match_records(executor.run(stream)) == serial_records(
            planned, stream
        )
        executor.close()

    def test_unpicklable_spec_reports_parallel_error(self):
        stream = mixed_stream(23, count=40)
        planned = plans_for(KEYED, stream)
        executor = ParallelExecutor(
            planned,
            ParallelConfig(workers=2, partitioner="key", backend="processes"),
        )
        executor._spec.parts[0]["unpicklable"] = lambda: None
        with pytest.raises(ParallelError, match="pickle"):
            executor.run(stream)


class TestSocketShards:
    def test_loopback_shard_is_byte_identical(self):
        stream = mixed_stream(31, count=250)
        planned = plans_for(KEYED, stream)
        server = serve_in_thread()  # 127.0.0.1, ephemeral port
        try:
            with ParallelExecutor(
                planned,
                ParallelConfig(
                    workers=2,
                    partitioner="key",
                    backend="socket",
                    shards=[server.address],
                    batch_size=64,
                ),
            ) as executor:
                matches = executor.run(stream)
                assert match_records(matches) == serial_records(
                    planned, stream
                )
                # Both workers multiplex onto the one loopback shard.
                assert executor.metrics.worker_count == 2
                again = executor.run(stream)
                assert match_records(again) == match_records(matches)
        finally:
            server.close()

    def test_workers_default_to_shard_count(self):
        stream = mixed_stream(37, count=60)
        planned = plans_for(KEYED, stream)
        server = serve_in_thread()
        try:
            executor = ParallelExecutor(
                planned,
                ParallelConfig(
                    partitioner="key",
                    backend="socket",
                    shards=[server.address, server.address],
                ),
            )
            assert executor.workers == 2
            executor.close()
        finally:
            server.close()

    def test_socket_backend_requires_shards(self):
        with pytest.raises(ParallelError, match="shard"):
            ParallelConfig(backend="socket")

    def test_unreachable_shard_is_a_typed_crash(self):
        stream = mixed_stream(41, count=30)
        planned = plans_for(KEYED, stream)
        executor = ParallelExecutor(
            planned,
            ParallelConfig(
                workers=1,
                partitioner="key",
                backend="socket",
                shards=[("127.0.0.1", 1)],  # nothing listens there
            ),
        )
        with pytest.raises(WorkerCrashError):
            executor.run(stream)

    def test_non_hello_first_frame_is_rejected_loudly(self):
        # A protocol-mismatched driver must get a typed ERROR reply and
        # a closed connection, not lose its first message and hang
        # waiting for a READY that never comes.
        server = serve_in_thread()
        try:
            conn = socket.create_connection(server.address, timeout=5.0)
            try:
                send_frame(conn, (MSG_INIT, b"not a hello"))
                reply = recv_frame(conn)
                assert reply[1] == REPLY_ERROR
                assert "hello" in reply[2][1]
                with pytest.raises(EOFError):
                    recv_frame(conn)  # server closed the connection
            finally:
                conn.close()
        finally:
            server.close()


class TestSocketFraming:
    """A recv() timeout must never desynchronize the frame stream:
    bytes of a partially-received frame stay buffered on the channel
    until the rest arrives (frames cross TCP segment boundaries on
    real networks even though loopback usually delivers them whole)."""

    @staticmethod
    def raw_frame(payload: object) -> bytes:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        return struct.pack(">I", len(blob)) + blob

    def test_frame_decoder_reassembles_byte_by_byte(self):
        frames = [("hello", 3), (0, REPLY_ACK, (1, 2, ["m"] * 10))]
        blob = b"".join(self.raw_frame(frame) for frame in frames)
        decoder = FrameDecoder()
        out = []
        for i in range(len(blob)):
            decoder.feed(blob[i : i + 1])
            while True:
                frame = decoder.next_frame()
                if frame is None:
                    break
                out.append(frame)
        assert out == frames
        assert not decoder.mid_frame

    def test_frame_decoder_refuses_oversized_lengths(self):
        decoder = FrameDecoder()
        decoder.feed(struct.pack(">I", (1 << 30) + 1))
        with pytest.raises(EOFError, match="exceeds"):
            decoder.next_frame()

    def test_partial_frames_survive_recv_timeouts(self):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen()
        channel = None
        conn = None
        try:
            channel = SocketChannel(listener.getsockname()[:2], worker_id=0)
            conn, _ = listener.accept()
            assert recv_frame(conn) == ("hello", 0)
            first = self.raw_frame((0, "ready", None))
            ack = (0, REPLY_ACK, (1, 0, list(range(200))))
            second = self.raw_frame(ack)
            # Header plus two payload bytes: the timeout fires mid-frame
            # and those bytes must be kept, not discarded.
            conn.sendall(first[:6])
            assert channel.recv(timeout=0.05) is None
            # Finish frame 1 and start frame 2 in the same segment.
            conn.sendall(first[6:] + second[:9])
            assert channel.recv(timeout=2.0) == (0, "ready", None)
            assert channel.recv(timeout=0.05) is None  # frame 2 partial
            conn.sendall(second[9:])
            assert channel.recv(timeout=2.0) == ack
            # The stream is still in sync for whole frames after all
            # that fragmentation.
            send_frame(conn, (0, "done", "x"))
            assert channel.recv(timeout=2.0) == (0, "done", "x")
            assert channel.recv(timeout=0.0) is None  # clean poll
        finally:
            if channel is not None:
                channel.kill()
            if conn is not None:
                conn.close()
            listener.close()


class TestStreamingFrontier:
    @pytest.mark.parametrize(
        "text,partitioner,span",
        (
            (KEYED, "key", None),
            (THETA, "window", 0.5),
            (NEG_TRAIL, "window", 0.7),
        ),
        ids=("key", "window-theta", "window-negation"),
    )
    def test_incremental_feed_is_byte_identical_and_ordered(
        self, text, partitioner, span
    ):
        stream = mixed_stream(43, count=400)
        planned = plans_for(text, stream)
        expected = serial_records(planned, stream)
        with ParallelExecutor(
            planned,
            ParallelConfig(
                workers=3,
                partitioner=partitioner,
                backend="threads",
                batch_size=16,
                span=span,
            ),
        ) as executor:
            run = executor.session().stream()
            events = list(stream)
            out = []
            for start in range(0, len(events), 29):
                out.extend(run.feed(events[start : start + 29]))
            early = len(out)
            out.extend(run.finish())
            assert match_records(out) == expected
            # The frontier releases matches before the stream ends, and
            # emission order IS canonical order (no trailing re-sort).
            if len(out) > 10:
                assert early > 0
            assert run.metrics.worker_count == 3

    def test_streaming_without_span_needs_explicit_config(self):
        stream = mixed_stream(47, count=50)
        planned = plans_for(THETA, stream)
        with ParallelExecutor(
            planned,
            ParallelConfig(workers=2, partitioner="window", backend="serial"),
        ) as executor:
            with pytest.raises(ParallelError, match="span"):
                executor.session().stream()

    def test_empty_streaming_run_finishes_clean(self):
        stream = mixed_stream(53, count=50)
        planned = plans_for(THETA, stream)
        with ParallelExecutor(
            planned,
            ParallelConfig(
                workers=2, partitioner="window", backend="serial", span=0.5
            ),
        ) as executor:
            run = executor.session().stream()
            assert run.finish() == []
            assert run.metrics.worker_count == 0


class TestCrashRecovery:
    def executor(self, planned, recovery):
        return ParallelExecutor(
            planned,
            ParallelConfig(
                workers=2,
                partitioner="key",
                backend="processes",
                batch_size=32,
                recovery=recovery,
            ),
        )

    def kill_one_worker(self, session):
        channel = session.pool._channels[0]
        channel._process.kill()
        channel._process.join()

    def test_reseed_recovers_exactly_once(self):
        stream = mixed_stream(59, count=400)
        planned = plans_for(KEYED, stream)
        expected = serial_records(planned, stream)
        with self.executor(planned, "reseed") as executor:
            run = executor.session().stream()
            events = list(stream)
            out = list(run.feed(events[:200]))
            self.kill_one_worker(executor.session())
            out.extend(run.feed(events[200:]))
            out.extend(run.finish())
            assert match_records(out) == expected

    def test_fail_policy_surfaces_typed_error(self):
        stream = mixed_stream(61, count=400)
        planned = plans_for(KEYED, stream)
        with self.executor(planned, "fail") as executor:
            run = executor.session().stream()
            events = list(stream)
            run.feed(events[:200])
            self.kill_one_worker(executor.session())
            with pytest.raises(WorkerCrashError):
                run.feed(events[200:])
                run.finish()

    def test_window_mode_crash_is_typed_even_with_reseed(self):
        # Window slices cannot reseed (snapshots are single-engine);
        # the crash must surface as the typed error, not hang or lose
        # matches silently.
        stream = mixed_stream(67, count=400)
        planned = plans_for(THETA, stream)
        with ParallelExecutor(
            planned,
            ParallelConfig(
                workers=2,
                partitioner="window",
                backend="processes",
                batch_size=32,
                recovery="reseed",
                span=0.5,
            ),
        ) as executor:
            run = executor.session().stream()
            events = list(stream)
            run.feed(events[:200])
            self.kill_one_worker(executor.session())
            with pytest.raises(WorkerCrashError):
                run.feed(events[200:])
                run.finish()

    def test_crash_after_all_acks_recovers_via_window_log(self):
        # Kill after the whole stream is acked but before FINISH: the
        # respawned worker is rebuilt purely from the seed log.
        stream = mixed_stream(71, count=300)
        planned = plans_for(KEYED, stream)
        expected = serial_records(planned, stream)
        with self.executor(planned, "reseed") as executor:
            run = executor.session().stream()
            out = list(run.feed(list(stream)))
            pool = executor.session().pool
            # Drain until nothing is in flight, then kill.
            for worker_id in range(pool.workers):
                pool._pump(
                    worker_id,
                    lambda worker_id=worker_id: not pool._unacked[worker_id],
                )
            self.kill_one_worker(executor.session())
            out.extend(run.finish())
            assert match_records(out) == expected


class TestIngestor:
    def test_async_ingestion_is_byte_identical(self):
        stream = mixed_stream(73, count=300)
        planned = plans_for(KEYED, stream)
        expected = serial_records(planned, stream)

        async def main():
            executor = ParallelExecutor(
                planned,
                ParallelConfig(
                    workers=2,
                    partitioner="key",
                    backend="threads",
                    batch_size=32,
                ),
            )
            got = []
            async with Ingestor(
                executor, flush_events=64, flush_seconds=0.01
            ) as ingestor:
                async def consume():
                    async for match in ingestor.matches():
                        got.append(match)

                consumer = asyncio.create_task(consume())
                for event in stream:
                    assert await ingestor.put(event)
                await ingestor.close()
                await consumer
            assert match_records(got) == expected
            assert ingestor.shed == 0
            assert ingestor.events_in == len(stream)
            # Every emitted match carries an arrival-stamped latency.
            assert len(ingestor.metrics.detection_latency) == len(got)
            assert ingestor.metrics.detection_latency.p95 >= 0.0
            executor.close()

        asyncio.run(main())

    def test_shed_policy_drops_and_counts_instead_of_blocking(self):
        stream = mixed_stream(79, count=200)
        planned = plans_for(KEYED, stream)

        async def main():
            executor = ParallelExecutor(
                planned,
                ParallelConfig(
                    workers=1, partitioner="key", backend="serial"
                ),
            )
            async with Ingestor(
                executor,
                max_pending=4,
                backpressure="shed",
                flush_events=256,
                flush_seconds=5.0,
            ) as ingestor:
                # Flood without yielding: the pump cannot drain between
                # puts, so the bounded queue must shed the overflow.
                accepted = 0
                for event in stream:
                    accepted += await ingestor.put(event)
                await ingestor.close()
                assert ingestor.shed > 0
                assert accepted + ingestor.shed == len(stream)
                assert ingestor.events_in == accepted
            executor.close()

        asyncio.run(main())

    def test_out_of_order_timestamps_are_rejected(self):
        stream = mixed_stream(83, count=20)
        planned = plans_for(KEYED, stream)

        async def main():
            executor = ParallelExecutor(
                planned,
                ParallelConfig(workers=1, partitioner="key", backend="serial"),
            )
            async with Ingestor(executor) as ingestor:
                await ingestor.put(Event("A", 5.0, {"k": 1, "v": 0.5}))
                with pytest.raises(Exception, match="arrives before"):
                    await ingestor.put(Event("B", 1.0, {"k": 1, "v": 0.5}))
                await ingestor.close()
            executor.close()

        asyncio.run(main())

    def test_concurrent_producers_get_unique_sequence_numbers(self):
        # put() is documented as multi-producer safe: admission is
        # serialized, so no two accepted events may share a sequence
        # number (duplicates would corrupt the frontier math).
        stream = mixed_stream(97, count=30)
        planned = plans_for(KEYED, stream)
        per_producer, producers = 60, 4

        async def main():
            executor = ParallelExecutor(
                planned,
                ParallelConfig(workers=2, partitioner="key", backend="serial"),
            )
            async with Ingestor(
                executor, max_pending=8, flush_events=16, flush_seconds=0.005
            ) as ingestor:
                fed_seqs = []
                real_feed = ingestor._stream.feed

                def spying_feed(events, arrivals=None):
                    fed_seqs.extend(event.seq for event in events)
                    return real_feed(events, arrivals)

                ingestor._stream.feed = spying_feed

                async def produce(worker):
                    for i in range(per_producer):
                        # Equal timestamps keep every interleaving
                        # non-decreasing; the bounded queue forces the
                        # blocking awaits the old race needed.
                        await ingestor.put(
                            Event("A", 1.0, {"k": worker, "v": 0.5})
                        )

                await asyncio.gather(
                    *(produce(worker) for worker in range(producers))
                )
                await ingestor.close()
                total = per_producer * producers
                assert ingestor.events_in == total
                assert sorted(fed_seqs) == list(range(total))
            executor.close()

        asyncio.run(main())

    def test_exception_in_body_tears_down_pump_and_run(self):
        # __aexit__ on an exception must await the cancelled pump (no
        # destroyed-task warnings, no feed left running on an executor
        # thread) and close the stream run so the pool is reusable.
        stream = mixed_stream(101, count=120)
        planned = plans_for(KEYED, stream)

        async def main():
            executor = ParallelExecutor(
                planned,
                ParallelConfig(
                    workers=2, partitioner="key", backend="threads"
                ),
            )
            holder = {}
            with pytest.raises(RuntimeError, match="boom"):
                async with Ingestor(
                    executor, flush_events=8, flush_seconds=0.005
                ) as ingestor:
                    holder["ingestor"] = ingestor
                    for event in list(stream)[:60]:
                        await ingestor.put(event)
                    await asyncio.sleep(0.02)
                    raise RuntimeError("boom")
            ingestor = holder["ingestor"]
            assert ingestor._pump_task.done()
            assert ingestor._stream.finished
            # The abandoned run was closed cleanly: the same session
            # pool serves a fresh full run with correct output.
            matches = executor.run(stream)
            assert match_records(matches) == serial_records(planned, stream)
            executor.close()

        asyncio.run(main())


class TestSnapshotCrossProcess:
    """EngineSnapshot pickled into a fresh OS process and reseeded
    there must continue exactly where the donor stopped — including
    negation buffers and pending (deferred) matches."""

    @pytest.mark.parametrize("algorithm", ("GREEDY", "ZSTREAM"))
    def test_pickle_seed_roundtrip_in_new_process(self, tmp_path, algorithm):
        stream = mixed_stream(89, count=400)
        planned = plans_for(NEG_TRAIL, stream, algorithm)
        events = list(stream)

        # Pick a cut where matches are actually pending (a completed
        # SEQ(A, B) still waiting out its negation window), so the round
        # trip exercises the deferred-state machinery, not just buffers.
        donor = build_engines(planned)
        cut = None
        for index, event in enumerate(events[:300]):
            donor.process(event)
            if index >= 150 and donor.export_state().pending:
                cut = index + 1
                break
        assert cut is not None, "no cut point had pending matches"
        snapshot = donor.export_state()
        tail = events[cut:]
        assert snapshot.pending
        assert any(e.type == "D" for e in snapshot.events)

        expected = []
        for event in tail:
            expected.extend(donor.process(event))
        expected.extend(donor.finalize())

        payload = tmp_path / "snapshot.pkl"
        outcome = tmp_path / "records.pkl"
        with open(payload, "wb") as fh:
            pickle.dump(
                {
                    "spec": EngineSpec.from_planned(planned),
                    "snapshot": snapshot,
                    "tail": tail,
                },
                fh,
            )
        script = (
            "import pickle, sys\n"
            "from repro.parallel.ordering import match_records\n"
            "with open(sys.argv[1], 'rb') as fh:\n"
            "    data = pickle.load(fh)\n"
            "engine = data['spec'].build()\n"
            "engine.seed_from(data['snapshot'])\n"
            "matches = []\n"
            "for event in data['tail']:\n"
            "    matches.extend(engine.process(event))\n"
            "matches.extend(engine.finalize())\n"
            "with open(sys.argv[2], 'wb') as fh:\n"
            "    pickle.dump(match_records(matches), fh)\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", script, str(payload), str(outcome)],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        with open(outcome, "rb") as fh:
            records = pickle.load(fh)
        assert records == match_records(expected)
