"""Multi-query shared-plan subsystem tests.

The load-bearing claim (ISSUE acceptance criterion): running a workload
through one :class:`MultiQueryEngine` yields **exactly** the per-query
match sets of running each pattern through its own engine, while
merged sub-plans are evaluated once per event (less work than the sum
of independent runs).
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro import build_engines, plan_pattern
from repro.errors import PlanError
from repro.multiquery import (
    MultiQueryEngine,
    SharedPlanOptimizer,
    Workload,
    canonical_subpattern,
    pattern_fingerprint,
    plan_workload,
    run_workload,
    subpattern_fingerprint,
)
from repro.patterns import decompose, parse_pattern
from repro.stats import StatisticsCatalog
from repro.workloads import (
    MultiQueryWorkloadConfig,
    generate_overlapping_workload,
    overlapping_stock_workload,
)

from .conftest import make_stream

CATALOG = StatisticsCatalog(
    {"A": 2.0, "B": 4.0, "C": 1.0, "D": 0.5},
    {frozenset(("a", "c")): 0.2},
)


def _catalog_for(pattern) -> StatisticsCatalog:
    """A rate for every type the pattern mentions (default 1.0)."""
    rates = {t: CATALOG.rates.get(t, 1.0) for t in pattern.variable_types().values()}
    return StatisticsCatalog(rates)


def independent_match_keys(pattern, stream, algorithm="GREEDY", **kwargs):
    planned = plan_pattern(pattern, _catalog_for(pattern), algorithm=algorithm)
    return Counter(
        m.key() for m in build_engines(planned, **kwargs).run(stream)
    )


def shared_match_keys(patterns, stream, algorithm="GREEDY", **run_kwargs):
    workload = Workload(patterns)
    result = run_workload(
        workload,
        stream,
        algorithm=algorithm,
        catalogs={n: _catalog_for(p) for n, p in workload.items()},
        **run_kwargs,
    )
    return workload, result


# ---------------------------------------------------------------------------
# fingerprinting
# ---------------------------------------------------------------------------

class TestFingerprints:
    def test_invariant_under_variable_renaming(self):
        first = decompose(parse_pattern(
            "PATTERN SEQ(A a, B b, C c) WHERE a.x < b.x WITHIN 5"
        ))
        second = decompose(parse_pattern(
            "PATTERN SEQ(A p, B q, C r) WHERE p.x < q.x WITHIN 5"
        ))
        assert (
            subpattern_fingerprint(first, first.positive_variables)
            == subpattern_fingerprint(second, second.positive_variables)
        )

    def test_canonical_order_aligns_renamed_variables(self):
        first = decompose(parse_pattern(
            "PATTERN SEQ(A a, B b) WHERE a.x < b.x WITHIN 5"
        ))
        second = decompose(parse_pattern(
            "PATTERN SEQ(A zz, B yy) WHERE zz.x < yy.x WITHIN 5"
        ))
        fp1, order1 = canonical_subpattern(first, first.positive_variables)
        fp2, order2 = canonical_subpattern(second, second.positive_variables)
        assert fp1 == fp2
        mapping = dict(zip(order1, order2))
        assert mapping == {"a": "zz", "b": "yy"}

    def test_window_is_part_of_the_fingerprint(self):
        base = "PATTERN SEQ(A a, B b) WITHIN {w}"
        d5 = decompose(parse_pattern(base.format(w=5)))
        d6 = decompose(parse_pattern(base.format(w=6)))
        assert (
            subpattern_fingerprint(d5, d5.positive_variables)
            != subpattern_fingerprint(d6, d6.positive_variables)
        )

    def test_predicates_distinguish(self):
        lt = decompose(parse_pattern(
            "PATTERN SEQ(A a, B b) WHERE a.x < b.x WITHIN 5"
        ))
        none = decompose(parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5"))
        assert (
            subpattern_fingerprint(lt, lt.positive_variables)
            != subpattern_fingerprint(none, none.positive_variables)
        )

    def test_event_types_distinguish(self):
        ab = decompose(parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5"))
        ac = decompose(parse_pattern("PATTERN SEQ(A a, C b) WITHIN 5"))
        assert (
            subpattern_fingerprint(ab, ab.positive_variables)
            != subpattern_fingerprint(ac, ac.positive_variables)
        )

    def test_kleene_flag_distinguishes(self):
        plain = decompose(parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5"))
        kleene = decompose(parse_pattern("PATTERN SEQ(A a, KL(B b)) WITHIN 5"))
        assert (
            subpattern_fingerprint(plain, plain.positive_variables)
            != subpattern_fingerprint(kleene, kleene.positive_variables)
        )

    def test_seq_and_distinguished_by_ordering_predicates(self):
        seq = decompose(parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5"))
        conj = decompose(parse_pattern("PATTERN AND(A a, B b) WITHIN 5"))
        assert (
            subpattern_fingerprint(seq, seq.positive_variables)
            != subpattern_fingerprint(conj, conj.positive_variables)
        )

    def test_shared_prefix_of_longer_sequences(self):
        short = decompose(parse_pattern(
            "PATTERN SEQ(A a, B b) WHERE a.x < b.x WITHIN 5"
        ))
        longer = decompose(parse_pattern(
            "PATTERN SEQ(A p, B q, D r) WHERE p.x < q.x WITHIN 5"
        ))
        assert subpattern_fingerprint(short, ("a", "b")) == (
            subpattern_fingerprint(longer, ("p", "q"))
        )

    def test_negation_does_not_block_positive_sharing(self):
        plain = parse_pattern("PATTERN SEQ(A a, C c) WITHIN 5")
        negated = parse_pattern("PATTERN SEQ(A a, NOT(B b), C c) WITHIN 5")
        assert pattern_fingerprint(plain) == pattern_fingerprint(negated)

    def test_unknown_variables_rejected(self):
        d = decompose(parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5"))
        with pytest.raises(Exception):
            subpattern_fingerprint(d, ("a", "nope"))


# ---------------------------------------------------------------------------
# workload container
# ---------------------------------------------------------------------------

class TestWorkload:
    def test_parses_strings_and_uniquifies_names(self):
        text = "PATTERN SEQ(A a, B b) WITHIN 5"
        workload = Workload([text, text])
        assert len(workload) == 2
        assert len(set(workload.names)) == 2

    def test_event_types_union(self):
        workload = Workload.of(
            "PATTERN SEQ(A a, B b) WITHIN 5",
            "PATTERN SEQ(C c, D d) WITHIN 5",
        )
        assert workload.event_types() == {"A", "B", "C", "D"}

    def test_empty_rejected(self):
        with pytest.raises(Exception):
            Workload([])


# ---------------------------------------------------------------------------
# DAG merging
# ---------------------------------------------------------------------------

OVERLAPPING = [
    "PATTERN SEQ(A a, B b) WHERE a.x < b.x WITHIN 4",
    "PATTERN SEQ(A p, B q, C r) WHERE p.x < q.x WITHIN 4",
    "PATTERN SEQ(A u, B v, D w) WHERE u.x < v.x WITHIN 4",
    "PATTERN SEQ(A m, B n, C o, D s) WHERE m.x < n.x WITHIN 4",
    "PATTERN SEQ(A g, B h) WHERE g.x < h.x WITHIN 4",
]


def _plan(patterns, algorithm="GREEDY", **opt_kwargs):
    workload = Workload(patterns)
    return plan_workload(
        workload,
        {n: _catalog_for(p) for n, p in workload.items()},
        algorithm=algorithm,
        **opt_kwargs,
    )


class TestSharedPlanDag:
    def test_overlapping_queries_merge(self):
        plan = _plan(OVERLAPPING)
        report = plan.report
        assert report.dag_nodes < report.subtrees_total
        assert report.shared_nodes >= 1
        assert report.reuse_count >= 4
        assert 0.0 < report.cost_savings < 1.0

    def test_identical_queries_fully_share(self):
        plan = _plan([
            "PATTERN SEQ(A a, B b, C c) WITHIN 4",
            "PATTERN SEQ(A x, B y, C z) WITHIN 4",
        ])
        # Second query materializes zero new nodes: one shared root.
        single = _plan(["PATTERN SEQ(A a, B b, C c) WITHIN 4"])
        assert plan.report.dag_nodes == single.report.dag_nodes
        assert len(plan.roots) == 2
        assert plan.roots[0].node is plan.roots[1].node

    def test_sharing_disabled_keeps_private_trees(self):
        plan = _plan(OVERLAPPING, sharing=False)
        assert plan.report.dag_nodes == plan.report.subtrees_total
        assert plan.report.reuse_count == 0

    def test_share_filter_vetoes_merges(self):
        plan = _plan(OVERLAPPING, share_filter=lambda node, query, cost: False)
        assert plan.report.merges_vetoed > 0
        assert plan.report.dag_nodes == plan.report.subtrees_total

    def test_intra_query_self_similarity_merges(self):
        plan = _plan(["PATTERN AND(A a, B b, A c, B d) WITHIN 4"])
        # The two (A, B) halves have equal fingerprints: leaves A and B
        # plus one shared join node referenced from both sides.
        assert plan.report.reuse_count >= 1

    def test_restrictive_selection_rejected(self):
        pattern = parse_pattern("PATTERN SEQ(A a, B b) WITHIN 4")
        planned = plan_pattern(
            pattern, _catalog_for(pattern), algorithm="GREEDY",
            selection="next",
        )
        with pytest.raises(PlanError):
            SharedPlanOptimizer().optimize([("q", planned)])


# ---------------------------------------------------------------------------
# execution equivalence (the acceptance criterion)
# ---------------------------------------------------------------------------

class TestEquivalence:
    @pytest.mark.parametrize("algorithm", ["GREEDY", "DP-B", "TRIVIAL"])
    def test_five_query_workload_matches_independent_engines(self, algorithm):
        stream = make_stream(17, count=120, types="ABCD")
        workload, result = shared_match_keys(
            OVERLAPPING, stream, algorithm=algorithm
        )
        total_independent_pm = 0
        for name, pattern in workload.items():
            planned = plan_pattern(
                pattern, _catalog_for(pattern), algorithm=algorithm
            )
            engine = build_engines(planned)
            expected = Counter(m.key() for m in engine.run(stream))
            got = Counter(m.key() for m in result.matches[name])
            assert got == expected, f"{name} diverges under {algorithm}"
            total_independent_pm += engine.metrics.partial_matches_created
        if algorithm == "DP-B":
            # Tree baseline: like-for-like instance accounting, so the
            # shared DAG (merged subtrees evaluated once per event) must
            # create strictly fewer partial matches.
            assert (
                result.metrics.partial_matches_created < total_independent_pm
            )

    @pytest.mark.parametrize(
        "patterns",
        [
            # negation: bounded, trailing, and leading
            [
                "PATTERN SEQ(A a, NOT(B b), C c) WHERE b.x = a.x WITHIN 4",
                "PATTERN SEQ(A p, C r) WITHIN 4",
                "PATTERN SEQ(A a, C c, NOT(B b)) WITHIN 3",
                "PATTERN SEQ(NOT(B n), A a, C c) WITHIN 4",
            ],
            # kleene sharing
            [
                "PATTERN SEQ(A a, KL(B b), C c) WITHIN 4",
                "PATTERN SEQ(A p, KL(B k), D r) WITHIN 4",
            ],
            # self-join (one event type at two positions)
            [
                "PATTERN SEQ(A first, A second) WHERE first.x < second.x WITHIN 5",
                "PATTERN SEQ(A one, A two, B three) WHERE one.x < two.x WITHIN 5",
            ],
            # conjunction + sequence mix over the same types
            [
                "PATTERN AND(A a, B b, C c) WHERE a.x < b.x WITHIN 3",
                "PATTERN SEQ(A p, B q, C r) WHERE p.x < q.x WITHIN 3",
            ],
            # disjunction (nested pattern, one root per DNF disjunct)
            [
                "PATTERN OR(SEQ(A a, B b), SEQ(A c, D d)) WITHIN 3",
                "PATTERN SEQ(A p, B q) WITHIN 3",
            ],
        ],
    )
    def test_feature_workloads_match_independent_engines(self, patterns):
        stream = make_stream(29, count=100, types="ABCD")
        workload, result = shared_match_keys(
            patterns, stream, max_kleene_size=3
        )
        for name, pattern in workload.items():
            expected = independent_match_keys(
                pattern, stream, max_kleene_size=3
            )
            got = Counter(m.key() for m in result.matches[name])
            assert got == expected, f"{name} diverges"

    def test_sharing_on_equals_sharing_off(self):
        stream = make_stream(41, count=100, types="ABCD")
        _, on = shared_match_keys(OVERLAPPING, stream, sharing=True)
        _, off = shared_match_keys(OVERLAPPING, stream, sharing=False)
        for name in on.matches:
            assert (
                Counter(m.key() for m in on.matches[name])
                == Counter(m.key() for m in off.matches[name])
            )
        assert (
            on.metrics.partial_matches_created
            <= off.metrics.partial_matches_created
        )

    def test_randomized_streams_stay_equivalent(self):
        patterns = OVERLAPPING + [
            "PATTERN SEQ(A a, NOT(B b), C c) WITHIN 4",
        ]
        for seed in (3, 7, 13, 23):
            stream = make_stream(seed, count=80, types="ABCD")
            workload, result = shared_match_keys(patterns, stream)
            for name, pattern in workload.items():
                expected = independent_match_keys(pattern, stream)
                got = Counter(m.key() for m in result.matches[name])
                assert got == expected, f"seed {seed}: {name} diverges"


# ---------------------------------------------------------------------------
# engine API and end-to-end plumbing
# ---------------------------------------------------------------------------

class TestEngineApi:
    def test_run_workload_result_shape(self):
        stream = make_stream(5, count=60, types="ABCD")
        workload, result = shared_match_keys(OVERLAPPING, stream)
        assert set(result.matches) == set(workload.names)
        assert result.events == len(stream)
        assert result.throughput > 0
        assert result.total_matches() == sum(
            len(v) for v in result.matches.values()
        )
        counts = result.engine.per_query_matches()
        assert counts == {n: len(v) for n, v in result.matches.items()}

    def test_matches_carry_query_names(self):
        stream = make_stream(5, count=60, types="ABCD")
        workload, result = shared_match_keys(OVERLAPPING, stream)
        for name, matches in result.matches.items():
            assert all(m.pattern_name == name for m in matches)

    def test_build_engines_accepts_shared_plans(self):
        plan = _plan(OVERLAPPING)
        engine = build_engines(plan)
        assert isinstance(engine, MultiQueryEngine)
        stream = make_stream(5, count=40, types="ABCD")
        grouped = engine.run(stream)
        assert set(grouped) == set(plan.query_names)

    def test_generator_produces_shareable_workload(self):
        workload = generate_overlapping_workload(
            list("ABCDEF"),
            MultiQueryWorkloadConfig(
                queries=4, core_size=2, suffix_size=1, window=4.0,
                attribute="x", seed=2,
            ),
        )
        assert len(workload) == 4
        catalogs = {n: _catalog_for(p) for n, p in workload.items()}
        plan = plan_workload(workload, catalogs)
        assert plan.report.reuse_count >= 3  # the shared core

    def test_stock_generator_round_trips(self):
        workload = overlapping_stock_workload(
            MultiQueryWorkloadConfig(queries=3, window=5.0)
        )
        assert len(workload) == 3
        assert all(p.window == 5.0 for p in workload)
