"""Tests for plan structures and plan-space enumeration."""

import pytest

from repro.errors import PlanError
from repro.patterns import decompose, parse_pattern
from repro.plans import (
    OrderPlan,
    TreePlan,
    catalan,
    count_orders,
    count_trees_fixed_order,
    count_unordered_bushy_trees,
    enumerate_bushy_trees,
    enumerate_orders,
    enumerate_trees_fixed_order,
    join,
    leaf,
)


class TestOrderPlan:
    def test_basic(self):
        plan = OrderPlan(("b", "a", "c"))
        assert len(plan) == 3
        assert plan.position("a") == 1
        assert plan.successors("a") == ("c",)
        assert plan.prefix(2) == ("b", "a")

    def test_duplicates_rejected(self):
        with pytest.raises(PlanError):
            OrderPlan(("a", "a"))

    def test_empty_rejected(self):
        with pytest.raises(PlanError):
            OrderPlan(())

    def test_trivial_follows_pattern(self):
        d = decompose(parse_pattern("PATTERN SEQ(A a, NOT(B b), C c) WITHIN 5"))
        assert OrderPlan.trivial(d).variables == ("a", "c")

    def test_validate_for(self):
        d = decompose(parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5"))
        OrderPlan(("b", "a")).validate_for(d)
        with pytest.raises(PlanError):
            OrderPlan(("a", "z")).validate_for(d)

    def test_equality_hash(self):
        assert OrderPlan(("a", "b")) == OrderPlan(("a", "b"))
        assert hash(OrderPlan(("a", "b"))) == hash(OrderPlan(("a", "b")))
        assert OrderPlan(("a", "b")) != OrderPlan(("b", "a"))


class TestTreePlan:
    def test_leaf_order(self):
        plan = TreePlan(join(join("a", "b"), "c"))
        assert plan.leaf_order == ("a", "b", "c")
        assert len(plan) == 3

    def test_left_deep_round_trip(self):
        order = OrderPlan(("c", "a", "b"))
        plan = TreePlan.left_deep(order)
        assert plan.is_left_deep
        assert plan.to_order() == order

    def test_bushy_not_left_deep(self):
        plan = TreePlan(join(join("a", "b"), join("c", "d")))
        assert not plan.is_left_deep
        with pytest.raises(PlanError):
            plan.to_order()

    def test_duplicate_leaves_rejected(self):
        with pytest.raises(PlanError):
            TreePlan(join("a", "a"))

    def test_ancestors_and_siblings(self):
        inner = join("a", "b")
        root = join(inner, "c")
        plan = TreePlan(root)
        path = plan.ancestors_of_leaf("a")
        assert path == [inner, root]
        leaf_c = plan.find_leaf("c")
        assert plan.sibling_of(leaf_c) is inner
        assert plan.parent_of(plan.root) is None

    def test_internal_node_structure(self):
        with pytest.raises(PlanError):
            # leaf with children
            from repro.plans import TreeNode

            TreeNode(variable="a", left=leaf("b"), right=leaf("c"))

    def test_equality(self):
        assert TreePlan(join("a", "b")) == TreePlan(join("a", "b"))
        assert TreePlan(join("a", "b")) != TreePlan(join("b", "a"))


class TestEnumeration:
    def test_catalan(self):
        assert [catalan(n) for n in range(6)] == [1, 1, 2, 5, 14, 42]

    def test_count_orders(self):
        assert count_orders(4) == 24
        assert len(list(enumerate_orders("abcd"))) == 24

    def test_fixed_order_trees_are_catalan(self):
        for n in (2, 3, 4, 5):
            variables = [f"v{i}" for i in range(n)]
            trees = list(enumerate_trees_fixed_order(variables))
            assert len(trees) == count_trees_fixed_order(n) == catalan(n - 1)
            for tree in trees:
                assert tree.leaf_order == tuple(variables)
            assert len(set(trees)) == len(trees)

    def test_bushy_trees_are_double_factorial(self):
        for n, expected in ((2, 1), (3, 3), (4, 15), (5, 105)):
            variables = [f"v{i}" for i in range(n)]
            trees = list(enumerate_bushy_trees(variables))
            assert len(trees) == expected
            assert count_unordered_bushy_trees(n) == expected
            assert len(set(trees)) == len(trees)

    def test_bushy_includes_all_fixed_order_shapes(self):
        # Every fixed-order tree shape appears among the bushy trees once
        # leaf orientation is normalized away: compare partition structure.
        def partitions(plan):
            return frozenset(
                frozenset(node.leaf_variables)
                for node in plan.root.internal_nodes()
            )

        bushy = {partitions(t) for t in enumerate_bushy_trees("abc")}
        fixed = {partitions(t) for t in enumerate_trees_fixed_order("abc")}
        assert fixed <= bushy
