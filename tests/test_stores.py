"""Unit tests for the indexed partial-match stores (repro.engines.stores).

The equivalence guarantees live in test_store_equivalence.py; here we
pin down the mechanics: key extraction, bucket probing with trigger
bounds, watermark-gated expiry, tombstone removal, compaction, and the
degradation paths for unhashable / missing key attributes.
"""

from __future__ import annotations

import pytest

from repro.engines.buffers import VariableBuffer
from repro.engines.matches import PartialMatch
from repro.engines.metrics import EngineMetrics
from repro.engines.stores import (
    PartialMatchStore,
    equality_key_pairs,
    make_event_key_fn,
    make_key_fn,
)
from repro.events import Event
from repro.patterns.predicates import Attr, Comparison, Const, TimestampOrder


def ev(type_: str, ts: float, seq: int, **attrs) -> Event:
    return Event(type_, ts, attrs, seq=seq)


def pm_of(variable: str, event: Event) -> PartialMatch:
    return PartialMatch.singleton(variable, event)


class TestEqualityKeyPairs:
    def test_extracts_spanning_equality(self):
        preds = [
            Comparison(Attr("a", "x"), "=", Attr("b", "x")),
            Comparison(Attr("a", "y"), "<", Attr("b", "y")),
        ]
        left, right, extracted = equality_key_pairs(preds, ["a"], ["b"])
        assert left == (("a", "x"),)
        assert right == (("b", "x"),)

    def test_orientation_is_normalized(self):
        preds = [Comparison(Attr("b", "x"), "==", Attr("a", "x"))]
        left, right, extracted = equality_key_pairs(preds, ["a"], ["b"])
        assert left == (("a", "x"),)
        assert right == (("b", "x"),)

    def test_composite_keys_align(self):
        preds = [
            Comparison(Attr("a", "x"), "=", Attr("c", "x")),
            Comparison(Attr("c", "y"), "=", Attr("b", "y")),
        ]
        left, right, extracted = equality_key_pairs(preds, ["a", "b"], ["c"])
        assert len(extracted) == 2
        assert left == (("a", "x"), ("b", "y"))
        assert right == (("c", "x"), ("c", "y"))

    def test_excludes_kleene_const_theta_and_same_side(self):
        preds = [
            Comparison(Attr("a", "x"), "=", Attr("k", "x")),  # kleene
            Comparison(Attr("a", "x"), "=", Const(3)),  # unary
            TimestampOrder("a", "b"),  # theta (op <)
            Comparison(Attr("a", "x"), "=", Attr("a2", "x")),  # same side
        ]
        left, right, extracted = equality_key_pairs(
            preds, ["a", "a2"], ["k", "b"], kleene=["k"]
        )
        assert left == () and right == ()

    def test_key_fns_resolve_bindings_and_events(self):
        key_of = make_key_fn((("a", "x"), ("b", "y")))
        a, b = ev("A", 1.0, 1, x=7), ev("B", 2.0, 2, y="s")
        assert key_of({"a": a, "b": b}) == (7, "s")
        ev_key = make_event_key_fn((("c", "x"),))
        assert ev_key(ev("C", 3.0, 3, x=9)) == (9,)
        assert make_key_fn(()) is None and make_event_key_fn(()) is None


class TestPartialMatchStore:
    def make(self, metrics=None):
        store = PartialMatchStore(metrics)
        index = store.add_index(make_key_fn((("a", "x"),)))
        return store, index

    def test_probe_hits_one_bucket_with_trigger_bound(self):
        store, index = self.make()
        pms = [pm_of("a", ev("A", float(i), i, x=i % 2)) for i in range(6)]
        for pm in pms:
            store.insert(pm)
        # key x=0 -> seqs 0,2,4; trigger bound 4 keeps 0 and 2 only.
        got = list(store.probe(index, (0,), 4))
        assert [p.trigger_seq for p in got] == [0, 2]
        assert list(store.probe(index, (5,), 99)) == []

    def test_iter_before_uses_bisect_bound(self):
        store, _ = self.make()
        for i in range(5):
            store.insert(pm_of("a", ev("A", float(i), i, x=0)))
        assert [p.trigger_seq for p in store.iter_before(3)] == [0, 1, 2]

    def test_expiry_is_watermark_gated_and_counted(self):
        metrics = EngineMetrics()
        store, index = self.make(metrics)
        for i in range(4):
            store.insert(pm_of("a", ev("A", float(i), i, x=0)))
        assert store.expire(0.0) == 0  # watermark: nothing can expire
        assert metrics.pm_expired == 0
        assert store.expire(2.5) == 3  # min_ts 0,1,2 die
        assert metrics.pm_expired == 3
        assert len(store) == 1
        assert [p.trigger_seq for p in store.probe(index, (0,), 99)] == [3]

    def test_purge_seqs_tombstones_without_rebuild(self):
        store, index = self.make()
        pms = [pm_of("a", ev("A", float(i), i, x=0)) for i in range(4)]
        for pm in pms:
            store.insert(pm)
        assert store.purge_seqs(frozenset({1, 3})) == 2
        assert [p.trigger_seq for p in store] == [0, 2]
        assert [p.trigger_seq for p in store.probe(index, (0,), 99)] == [0, 2]
        assert len(store) == 2

    def test_discard_then_compaction_keeps_answers_right(self):
        store, index = self.make()
        pms = [pm_of("a", ev("A", float(i), i, x=0)) for i in range(200)]
        for pm in pms:
            store.insert(pm)
        for pm in pms[:150]:  # force compaction (dead > live, dead > 64)
            store.discard(pm)
        assert len(store) == 50
        assert [p.trigger_seq for p in store.probe(index, (0,), 175)] == list(
            range(150, 175)
        )

    def test_unhashable_store_key_lands_in_overflow(self):
        store, index = self.make()
        weird = pm_of("a", ev("A", 0.0, 0, x=[1, 2]))  # unhashable
        plain = pm_of("a", ev("A", 1.0, 1, x=5))
        store.insert(weird)
        store.insert(plain)
        # The overflow entry is visible to every probe of that index.
        assert list(store.probe(index, (5,), 99)) == [weird, plain]
        assert list(store.probe(index, (6,), 99)) == [weird]

    def test_missing_attr_entry_is_unreachable_via_index(self):
        store, index = self.make()
        store.insert(pm_of("a", ev("A", 0.0, 0)))  # no attribute x at all
        assert list(store.probe(index, (0,), 99)) == []
        assert len(store) == 1  # still live for scans and accounting

    def test_unhashable_probe_key_degrades_to_scan(self):
        metrics = EngineMetrics()
        store, index = self.make(metrics)
        store.insert(pm_of("a", ev("A", 0.0, 0, x=5)))
        assert list(store.probe(index, ([1],), 99)) == list(store)
        assert metrics.index_misses == 1

    def test_probe_metrics(self):
        metrics = EngineMetrics()
        store, index = self.make(metrics)
        store.insert(pm_of("a", ev("A", 0.0, 0, x=5)))
        list(store.probe(index, (5,), 99))
        list(store.probe(index, (6,), 99))
        assert metrics.index_probes == 2
        assert metrics.index_hits == 1
        assert metrics.index_misses == 1

    def test_indexes_must_precede_inserts(self):
        store = PartialMatchStore()
        store.insert(pm_of("a", ev("A", 0.0, 0, x=1)))
        with pytest.raises(ValueError):
            store.add_index(make_key_fn((("a", "x"),)))


class TestVariableBuffer:
    def test_remove_seq_is_a_tombstone(self):
        buffer = VariableBuffer("a", "A")
        for i in range(4):
            buffer.offer(ev("A", float(i), i))
        buffer.remove_seq(2)
        assert len(buffer) == 3
        assert [e.seq for e in buffer] == [0, 1, 3]
        assert [e.seq for e in buffer.events_before(3)] == [0, 1]

    def test_prune_drains_tombstones_and_expired(self):
        buffer = VariableBuffer("a", "A")
        for i in range(4):
            buffer.offer(ev("A", float(i), i))
        buffer.remove_seq(0)
        buffer.prune(1.5)  # drops seq 0 (dead) and seq 1 (expired)
        assert len(buffer) == 2
        assert [e.seq for e in buffer] == [2, 3]

    def test_indexed_probe_bucket_and_trigger_bound(self):
        metrics = EngineMetrics()
        buffer = VariableBuffer("a", "A", metrics=metrics)
        buffer.set_index(lambda e: (e["x"],))
        for i in range(6):
            buffer.offer(ev("A", float(i), i, x=i % 2))
        assert [e.seq for e in buffer.probe((0,), 4)] == [0, 2]
        assert [e.seq for e in buffer.probe((1,), 99)] == [1, 3, 5]
        assert list(buffer.probe((7,), 99)) == []
        assert metrics.index_probes == 3
        assert metrics.index_hits == 2

    def test_probe_respects_prune_and_tombstones(self):
        buffer = VariableBuffer("a", "A")
        buffer.set_index(lambda e: (e["x"],))
        for i in range(6):
            buffer.offer(ev("A", float(i), i, x=0))
        buffer.remove_seq(3)
        buffer.prune(2.0)
        assert [e.seq for e in buffer.probe((0,), 99)] == [2, 4, 5]

    def test_index_exact_flags_overflow(self):
        store = PartialMatchStore()
        index = store.add_index(make_key_fn((("a", "x"),)))
        store.insert(pm_of("a", ev("A", 0.0, 0, x=5)))
        assert store.index_exact(index)
        store.insert(pm_of("a", ev("A", 1.0, 1, x=[1])))  # unhashable
        assert not store.index_exact(index)
        buffer = VariableBuffer("a", "A")
        buffer.set_index(lambda e: (e["x"],))
        buffer.offer(ev("A", 0.0, 0, x=5))
        assert buffer.index_exact
        buffer.offer(ev("A", 1.0, 1, x=[1]))
        assert not buffer.index_exact

    def test_buffer_index_does_not_leak_unique_keys(self):
        # Regression: buckets of never-reprobed keys must be reclaimed
        # by pruning, not retained for the stream's lifetime.
        buffer = VariableBuffer("a", "A")
        buffer.set_index(lambda e: (e["x"],))
        for i in range(5000):
            buffer.offer(ev("A", float(i), i, x=i))
            buffer.prune(float(i) - 10.0)
        assert len(buffer) == 11
        assert len(buffer._buckets) < 200

    def test_duplicate_unassigned_seqs_count_per_copy(self):
        # The negation checker buffers events never admitted to a
        # stream; they all carry seq=-1 and must be counted per copy.
        buffer = VariableBuffer("n", "B")
        buffer.offer(ev("B", 1.0, -1))
        buffer.offer(ev("B", 8.0, -1))
        buffer.prune(5.0)
        assert len(buffer) == 1
