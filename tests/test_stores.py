"""Unit tests for the indexed partial-match stores (repro.engines.stores).

The equivalence guarantees live in test_store_equivalence.py; here we
pin down the mechanics: key extraction, bucket probing with trigger
bounds, watermark-gated expiry, tombstone removal, compaction, and the
degradation paths for unhashable / missing key attributes.
"""

from __future__ import annotations

import pytest

from repro.engines.buffers import VariableBuffer
from repro.engines.matches import PartialMatch
from repro.engines.metrics import EngineMetrics
from repro.engines.stores import (
    PartialMatchStore,
    equality_key_pairs,
    make_event_key_fn,
    make_key_fn,
)
from repro.events import Event
from repro.patterns.predicates import Attr, Comparison, Const, TimestampOrder


def ev(type_: str, ts: float, seq: int, **attrs) -> Event:
    return Event(type_, ts, attrs, seq=seq)


def pm_of(variable: str, event: Event) -> PartialMatch:
    return PartialMatch.singleton(variable, event)


class TestEqualityKeyPairs:
    def test_extracts_spanning_equality(self):
        preds = [
            Comparison(Attr("a", "x"), "=", Attr("b", "x")),
            Comparison(Attr("a", "y"), "<", Attr("b", "y")),
        ]
        left, right, extracted = equality_key_pairs(preds, ["a"], ["b"])
        assert left == (("a", "x"),)
        assert right == (("b", "x"),)

    def test_orientation_is_normalized(self):
        preds = [Comparison(Attr("b", "x"), "==", Attr("a", "x"))]
        left, right, extracted = equality_key_pairs(preds, ["a"], ["b"])
        assert left == (("a", "x"),)
        assert right == (("b", "x"),)

    def test_composite_keys_align(self):
        preds = [
            Comparison(Attr("a", "x"), "=", Attr("c", "x")),
            Comparison(Attr("c", "y"), "=", Attr("b", "y")),
        ]
        left, right, extracted = equality_key_pairs(preds, ["a", "b"], ["c"])
        assert len(extracted) == 2
        assert left == (("a", "x"), ("b", "y"))
        assert right == (("c", "x"), ("c", "y"))

    def test_excludes_const_theta_and_same_side_keeps_kleene(self):
        preds = [
            Comparison(Attr("a", "x"), "=", Attr("k", "x")),  # kleene: kept
            Comparison(Attr("a", "x"), "=", Const(3)),  # unary
            TimestampOrder("a", "b"),  # theta (op <)
            Comparison(Attr("a", "x"), "=", Attr("a2", "x")),  # same side
        ]
        left, right, extracted = equality_key_pairs(
            preds, ["a", "a2"], ["k", "b"], kleene=["k"]
        )
        # Kleene variables key on the common element value now; the
        # other three predicate shapes stay excluded.
        assert left == (("a", "x"),)
        assert right == (("k", "x"),)
        assert len(extracted) == 1

    def test_key_fns_resolve_bindings_and_events(self):
        key_of = make_key_fn((("a", "x"), ("b", "y")))
        a, b = ev("A", 1.0, 1, x=7), ev("B", 2.0, 2, y="s")
        assert key_of({"a": a, "b": b}) == (7, "s")
        ev_key = make_event_key_fn((("c", "x"),))
        assert ev_key(ev("C", 3.0, 3, x=9)) == (9,)
        assert make_key_fn(()) is None and make_event_key_fn(()) is None


class TestPartialMatchStore:
    def make(self, metrics=None):
        store = PartialMatchStore(metrics)
        index = store.add_index(make_key_fn((("a", "x"),)))
        return store, index

    def test_probe_hits_one_bucket_with_trigger_bound(self):
        store, index = self.make()
        pms = [pm_of("a", ev("A", float(i), i, x=i % 2)) for i in range(6)]
        for pm in pms:
            store.insert(pm)
        # key x=0 -> seqs 0,2,4; trigger bound 4 keeps 0 and 2 only.
        got = list(store.probe(index, (0,), 4))
        assert [p.trigger_seq for p in got] == [0, 2]
        assert list(store.probe(index, (5,), 99)) == []

    def test_iter_before_uses_bisect_bound(self):
        store, _ = self.make()
        for i in range(5):
            store.insert(pm_of("a", ev("A", float(i), i, x=0)))
        assert [p.trigger_seq for p in store.iter_before(3)] == [0, 1, 2]

    def test_expiry_is_watermark_gated_and_counted(self):
        metrics = EngineMetrics()
        store, index = self.make(metrics)
        for i in range(4):
            store.insert(pm_of("a", ev("A", float(i), i, x=0)))
        assert store.expire(0.0) == 0  # watermark: nothing can expire
        assert metrics.pm_expired == 0
        assert store.expire(2.5) == 3  # min_ts 0,1,2 die
        assert metrics.pm_expired == 3
        assert len(store) == 1
        assert [p.trigger_seq for p in store.probe(index, (0,), 99)] == [3]

    def test_purge_seqs_tombstones_without_rebuild(self):
        store, index = self.make()
        pms = [pm_of("a", ev("A", float(i), i, x=0)) for i in range(4)]
        for pm in pms:
            store.insert(pm)
        assert store.purge_seqs(frozenset({1, 3})) == 2
        assert [p.trigger_seq for p in store] == [0, 2]
        assert [p.trigger_seq for p in store.probe(index, (0,), 99)] == [0, 2]
        assert len(store) == 2

    def test_discard_then_compaction_keeps_answers_right(self):
        store, index = self.make()
        pms = [pm_of("a", ev("A", float(i), i, x=0)) for i in range(200)]
        for pm in pms:
            store.insert(pm)
        for pm in pms[:150]:  # force compaction (dead > live, dead > 64)
            store.discard(pm)
        assert len(store) == 50
        assert [p.trigger_seq for p in store.probe(index, (0,), 175)] == list(
            range(150, 175)
        )

    def test_unhashable_store_key_lands_in_overflow(self):
        store, index = self.make()
        weird = pm_of("a", ev("A", 0.0, 0, x=[1, 2]))  # unhashable
        plain = pm_of("a", ev("A", 1.0, 1, x=5))
        store.insert(weird)
        store.insert(plain)
        # The overflow entry is visible to every probe of that index.
        assert list(store.probe(index, (5,), 99)) == [weird, plain]
        assert list(store.probe(index, (6,), 99)) == [weird]

    def test_missing_attr_entry_is_unreachable_via_index(self):
        store, index = self.make()
        store.insert(pm_of("a", ev("A", 0.0, 0)))  # no attribute x at all
        assert list(store.probe(index, (0,), 99)) == []
        assert len(store) == 1  # still live for scans and accounting

    def test_unhashable_probe_key_degrades_to_scan(self):
        metrics = EngineMetrics()
        store, index = self.make(metrics)
        store.insert(pm_of("a", ev("A", 0.0, 0, x=5)))
        assert list(store.probe(index, ([1],), 99)) == list(store)
        assert metrics.index_misses == 1

    def test_probe_metrics(self):
        metrics = EngineMetrics()
        store, index = self.make(metrics)
        store.insert(pm_of("a", ev("A", 0.0, 0, x=5)))
        list(store.probe(index, (5,), 99))
        list(store.probe(index, (6,), 99))
        assert metrics.index_probes == 2
        assert metrics.index_hits == 1
        assert metrics.index_misses == 1

    def test_indexes_must_precede_inserts(self):
        store = PartialMatchStore()
        store.insert(pm_of("a", ev("A", 0.0, 0, x=1)))
        with pytest.raises(ValueError):
            store.add_index(make_key_fn((("a", "x"),)))


class TestVariableBuffer:
    def test_remove_seq_is_a_tombstone(self):
        buffer = VariableBuffer("a", "A")
        for i in range(4):
            buffer.offer(ev("A", float(i), i))
        buffer.remove_seq(2)
        assert len(buffer) == 3
        assert [e.seq for e in buffer] == [0, 1, 3]
        assert [e.seq for e in buffer.events_before(3)] == [0, 1]

    def test_prune_drains_tombstones_and_expired(self):
        buffer = VariableBuffer("a", "A")
        for i in range(4):
            buffer.offer(ev("A", float(i), i))
        buffer.remove_seq(0)
        buffer.prune(1.5)  # drops seq 0 (dead) and seq 1 (expired)
        assert len(buffer) == 2
        assert [e.seq for e in buffer] == [2, 3]

    def test_indexed_probe_bucket_and_trigger_bound(self):
        metrics = EngineMetrics()
        buffer = VariableBuffer("a", "A", metrics=metrics)
        buffer.set_index(lambda e: (e["x"],))
        for i in range(6):
            buffer.offer(ev("A", float(i), i, x=i % 2))
        assert [e.seq for e in buffer.probe((0,), 4)] == [0, 2]
        assert [e.seq for e in buffer.probe((1,), 99)] == [1, 3, 5]
        assert list(buffer.probe((7,), 99)) == []
        assert metrics.index_probes == 3
        assert metrics.index_hits == 2

    def test_probe_respects_prune_and_tombstones(self):
        buffer = VariableBuffer("a", "A")
        buffer.set_index(lambda e: (e["x"],))
        for i in range(6):
            buffer.offer(ev("A", float(i), i, x=0))
        buffer.remove_seq(3)
        buffer.prune(2.0)
        assert [e.seq for e in buffer.probe((0,), 99)] == [2, 4, 5]

    def test_index_exact_flags_overflow(self):
        store = PartialMatchStore()
        index = store.add_index(make_key_fn((("a", "x"),)))
        store.insert(pm_of("a", ev("A", 0.0, 0, x=5)))
        assert store.index_exact(index)
        store.insert(pm_of("a", ev("A", 1.0, 1, x=[1])))  # unhashable
        assert not store.index_exact(index)
        buffer = VariableBuffer("a", "A")
        buffer.set_index(lambda e: (e["x"],))
        buffer.offer(ev("A", 0.0, 0, x=5))
        assert buffer.index_exact
        buffer.offer(ev("A", 1.0, 1, x=[1]))
        assert not buffer.index_exact

    def test_buffer_index_does_not_leak_unique_keys(self):
        # Regression: buckets of never-reprobed keys must be reclaimed
        # by pruning, not retained for the stream's lifetime.
        buffer = VariableBuffer("a", "A")
        buffer.set_index(lambda e: (e["x"],))
        for i in range(5000):
            buffer.offer(ev("A", float(i), i, x=i))
            buffer.prune(float(i) - 10.0)
        assert len(buffer) == 11
        assert len(buffer._buckets) < 200

    def test_duplicate_unassigned_seqs_count_per_copy(self):
        # The negation checker buffers events never admitted to a
        # stream; they all carry seq=-1 and must be counted per copy.
        buffer = VariableBuffer("n", "B")
        buffer.offer(ev("B", 1.0, -1))
        buffer.offer(ev("B", 8.0, -1))
        buffer.prune(5.0)
        assert len(buffer) == 1


class TestRangeKeyPairs:
    def test_extracts_spanning_theta(self):
        from repro.engines.stores import range_key_pairs

        preds = [
            Comparison(Attr("a", "x"), "=", Attr("b", "x")),
            Comparison(Attr("a", "y"), "<", Attr("b", "y")),
        ]
        spec = range_key_pairs(preds, ["a"], ["b"])
        left_item, left_op, right_item, right_op, predicate = spec
        assert left_item == ("a", "y") and left_op == "<"
        assert right_item == ("b", "y") and right_op == ">"
        assert predicate is preds[1]

    def test_orientation_flips_operator(self):
        from repro.engines.stores import range_key_pairs

        # b.y >= a.y with a on the left side: a stored left value L
        # matches a probe value P iff P >= L, i.e. L <= P.
        preds = [Comparison(Attr("b", "y"), ">=", Attr("a", "y"))]
        left_item, left_op, right_item, right_op, _ = range_key_pairs(
            preds, ["a"], ["b"]
        )
        assert left_item == ("a", "y") and left_op == "<="
        assert right_item == ("b", "y") and right_op == ">="

    def test_excludes_kleene_const_equality_and_unary(self):
        from repro.engines.stores import range_key_pairs

        preds = [
            Comparison(Attr("a", "x"), "=", Attr("b", "x")),  # equality
            Comparison(Attr("a", "x"), "<", Const(3)),  # const operand
            Comparison(Attr("k", "x"), "<", Attr("b", "x")),  # kleene
            Comparison(Attr("a", "x"), "<", Attr("a", "y")),  # same side
        ]
        assert range_key_pairs(preds, ["a", "k"], ["b"], kleene=["k"]) is None

    def test_first_usable_theta_wins(self):
        from repro.engines.stores import range_key_pairs

        preds = [
            Comparison(Attr("a", "y"), "<", Attr("b", "y")),
            Comparison(Attr("a", "z"), ">", Attr("b", "z")),
        ]
        spec = range_key_pairs(preds, ["a"], ["b"])
        assert spec[0] == ("a", "y")


class TestRangeProbes:
    def store_with_range(self, op="<", key=False):
        from repro.engines.stores import make_key_fn, make_value_fn

        metrics = EngineMetrics()
        store = PartialMatchStore(metrics)
        key_of = make_key_fn((("a", "k"),)) if key else None
        index = store.add_index(
            key_of, value_of=make_value_fn(("a", "v")), op=op
        )
        return store, index, metrics

    def insert(self, store, seq, v, ts=None, **extra):
        event = ev("A", ts if ts is not None else seq * 0.1, seq, v=v, **extra)
        pm = pm_of("a", event)
        store.insert(pm)
        return pm

    def test_bisect_selects_range_in_insertion_order(self):
        store, index, metrics = self.store_with_range(op="<")
        pms = [self.insert(store, seq, v)
               for seq, v in ((0, 5.0), (1, 1.0), (2, 3.0), (3, 2.0))]
        got = list(store.probe(index, (), trigger_seq=10, bound=3.0))
        # stored < 3.0 keeps v=1.0 (seq 1) and v=2.0 (seq 3), in
        # insertion order — never value order.
        assert got == [pms[1], pms[3]]
        assert metrics.range_probes == 1
        assert metrics.range_hits == 1

    def test_trigger_bound_applies_inside_range(self):
        store, index, _ = self.store_with_range(op="<")
        pms = [self.insert(store, seq, v) for seq, v in ((0, 1.0), (5, 2.0))]
        got = list(store.probe(index, (), trigger_seq=5, bound=9.9))
        assert got == [pms[0]]

    def test_operator_variants(self):
        from repro.engines.stores import make_value_fn

        values = (1.0, 2.0, 2.0, 3.0)
        expect = {
            "<": {1.0}, "<=": {1.0, 2.0}, ">": {3.0}, ">=": {2.0, 3.0},
        }
        for op, expected in expect.items():
            store, index, _ = self.store_with_range(op=op)
            for seq, v in enumerate(values):
                self.insert(store, seq, v)
            got = {
                pm.bindings["a"]["v"]
                for pm in store.probe(index, (), 99, bound=2.0)
            }
            assert got == expected, op

    def test_nan_and_missing_values_are_exactly_excluded(self):
        store, index, _ = self.store_with_range(op="<")
        good = self.insert(store, 0, 1.0)
        nan_pm = pm_of("a", ev("A", 0.1, 1, v=float("nan")))
        store.insert(nan_pm)
        missing = pm_of("a", ev("A", 0.2, 2))  # no "v" at all
        store.insert(missing)
        # NaN / missing can never satisfy the theta predicate — the
        # range path may drop them; the plain bucket path must not.
        assert list(store.probe(index, (), 99, bound=5.0)) == [good]
        assert len(list(store.probe(index, (), 99))) == 3

    def test_unorderable_stored_values_stay_probe_visible(self):
        store, index, metrics = self.store_with_range(op="<")
        a = self.insert(store, 0, 1.0)
        weird = pm_of("a", ev("A", 0.1, 1, v="str"))  # insort TypeError
        store.insert(weird)
        got = list(store.probe(index, (), 99, bound=0.5))
        # 1.0 < 0.5 fails the bisect; the unorderable entry must still
        # be yielded (the residual predicate rejects it exactly).
        assert got == [weird]

    def test_unorderable_bound_degrades_to_bucket_scan(self):
        store, index, metrics = self.store_with_range(op="<")
        pms = [self.insert(store, seq, float(seq)) for seq in range(3)]
        got = list(store.probe(index, (), 99, bound="zzz"))
        assert got == pms
        assert metrics.range_probes == 0  # no bisect was applied

    def test_hash_and_range_compose(self):
        store, index, metrics = self.store_with_range(op="<", key=True)
        in_bucket = pm_of("a", ev("A", 0.0, 0, k=1, v=1.0))
        other_bucket = pm_of("a", ev("A", 0.1, 1, k=2, v=1.0))
        too_big = pm_of("a", ev("A", 0.2, 2, k=1, v=9.0))
        for pm in (in_bucket, other_bucket, too_big):
            store.insert(pm)
        got = list(store.probe(index, (1,), 99, bound=5.0))
        assert got == [in_bucket]
        assert metrics.index_probes == 1 and metrics.index_hits == 1
        assert metrics.range_probes == 1

    def test_expiry_and_compaction_preserve_range_runs(self):
        store, index, _ = self.store_with_range(op="<")
        for seq in range(200):
            self.insert(store, seq, float(seq % 7), ts=seq * 0.1)
        store.expire(cutoff=10.0)  # first 100 entries die
        got = list(store.probe(index, (), 10_000, bound=1.0))
        assert {pm.bindings["a"]["v"] for pm in got} == {0.0}
        assert all(pm.min_ts >= 10.0 for pm in got)
        assert [pm.trigger_seq for pm in got] == sorted(
            pm.trigger_seq for pm in got
        )

    def test_range_hits_counts_probes_with_candidates(self):
        store, index, metrics = self.store_with_range(op="<")
        self.insert(store, 0, 5.0)
        list(store.probe(index, (), 99, bound=1.0))  # empty
        list(store.probe(index, (), 99, bound=9.0))  # one candidate
        assert metrics.range_probes == 2
        assert metrics.range_hits == 1


class TestBufferRangeProbes:
    def buffer_with_range(self, op="<", key=False):
        metrics = EngineMetrics()
        buffer = VariableBuffer("b", "B", metrics=metrics)
        key_of = (lambda e: (e["k"],)) if key else None
        buffer.set_index(key_of, value_of=lambda e: e["v"], op=op)
        return buffer, metrics

    def test_bisect_selects_range_in_seq_order(self):
        buffer, metrics = self.buffer_with_range(op=">")
        events = [
            ev("B", 0.1, 0, v=5.0),
            ev("B", 0.2, 1, v=1.0),
            ev("B", 0.3, 2, v=7.0),
        ]
        for event in events:
            buffer.offer(event)
        got = list(buffer.probe((), trigger_seq=10, bound=4.0))
        assert got == [events[0], events[2]]  # seq order, not value order
        assert metrics.range_probes == 1 and metrics.range_hits == 1

    def test_pruned_and_consumed_events_filtered(self):
        buffer, _ = self.buffer_with_range(op="<")
        events = [ev("B", 0.1 * i, i, v=float(i)) for i in range(6)]
        for event in events:
            buffer.offer(event)
        buffer.remove_seq(2)
        buffer.prune(0.15)  # seqs 0 and 1 (ts 0.0, 0.1) expire
        got = list(buffer.probe((), trigger_seq=10, bound=99.0))
        assert [e.seq for e in got] == [3, 4, 5]

    def test_hash_and_range_compose_on_buffers(self):
        buffer, _ = self.buffer_with_range(op="<", key=True)
        inside = ev("B", 0.1, 0, k=1, v=1.0)
        wrong_key = ev("B", 0.2, 1, k=2, v=1.0)
        too_big = ev("B", 0.3, 2, k=1, v=9.0)
        for event in (inside, wrong_key, too_big):
            buffer.offer(event)
        assert list(buffer.probe((1,), 99, bound=5.0)) == [inside]

    def test_range_runs_do_not_leak_under_unbounded_probes(self):
        """Regression: with every probe taking the non-range path
        (``bound=NO_BOUND``, e.g. a predicate with no usable range
        bound), the probe-time prefix-trim shrinks ``_indexed_total``
        and used to mask the sorted runs' staleness forever — the runs
        grew with the whole stream."""
        from repro.engines.stores import NO_BOUND

        buffer, _ = self.buffer_with_range(op="<")
        for i in range(5000):
            buffer.offer(ev("B", 0.001 * i, i, v=float(i % 10)))
            buffer.prune(0.001 * i - 0.05)  # ~50-event window
            # Non-range probe: trims the bucket prefix, not the runs.
            list(buffer.probe((), trigger_seq=i, bound=NO_BOUND))
        run_entries = sum(
            len(bucket.rvals) + len(bucket.runordered)
            for bucket in buffer._buckets.values()
        )
        assert run_entries < 4 * len(buffer) + 256, (
            f"{run_entries} run entries against {len(buffer)} live events"
        )


class TestBucketSweep:
    """Per-bucket tombstone sweeps (probe-time, physical-only)."""

    def make(self):
        store = PartialMatchStore()
        index = store.add_index(make_key_fn((("a", "x"),)))
        return store, index

    def bucket(self, store, index, key):
        return store._indexes[index].buckets[key]

    def fill(self, store, count, key=0):
        pms = [
            pm_of("a", ev("A", float(i), i, x=key)) for i in range(count)
        ]
        for pm in pms:
            store.insert(pm)
        return pms

    def test_expiry_counts_dead_per_bucket_and_probe_sweeps(self):
        store, index = self.make()
        pms = self.fill(store, 20)
        # Expire 12 (>= _BUCKET_MIN_DEAD and at least half the bucket)
        # but stay far below the global compaction threshold of 64.
        store.expire(12.0)
        bucket = self.bucket(store, index, (0,))
        assert bucket.dead == 12
        assert len(bucket.pms) == 20  # tombstoned, not yet removed
        got = list(store.probe(index, (0,), 99))
        assert got == pms[12:]  # answers unchanged by the sweep...
        assert len(bucket.pms) == 8  # ...but the tombstones are gone
        assert bucket.dead == 0

    def test_small_dead_counts_do_not_trigger_a_sweep(self):
        store, index = self.make()
        pms = self.fill(store, 20)
        for pm in pms[:5]:  # below _BUCKET_MIN_DEAD
            store.discard(pm)
        list(store.probe(index, (0,), 99))
        bucket = self.bucket(store, index, (0,))
        assert len(bucket.pms) == 20 and bucket.dead == 5

    def test_unprobed_buckets_keep_their_tombstones(self):
        store, index = self.make()
        hot = self.fill(store, 20, key=0)
        cold = [
            pm_of("a", ev("A", float(i), 100 + i, x=1)) for i in range(20)
        ]
        for pm in cold:
            store.insert(pm)
        for pm in hot[:12] + cold[:12]:
            store.discard(pm)
        list(store.probe(index, (0,), 999))
        assert len(self.bucket(store, index, (0,)).pms) == 8
        # The cold bucket was never probed: sweep cost is only ever
        # paid by the keys that are actually hot.
        assert len(self.bucket(store, index, (1,)).pms) == 20
        assert self.bucket(store, index, (1,)).dead == 12

    def test_sweep_preserves_range_runs(self):
        from repro.engines.stores import make_value_fn

        store = PartialMatchStore()
        index = store.add_index(
            make_key_fn((("a", "x"),)),
            value_of=make_value_fn(("a", "v")),
            op="<",
        )
        pms = [
            pm_of("a", ev("A", float(i), i, x=0, v=float(i % 7)))
            for i in range(20)
        ]
        for pm in pms:
            store.insert(pm)
        for pm in pms[:12]:
            store.discard(pm)
        expected = [
            pm for pm in pms[12:] if pm.bindings["a"]["v"] < 4.0
        ]
        got = list(store.probe(index, (0,), 999, bound=4.0))
        assert got == expected
        bucket = store._indexes[index].buckets[(0,)]
        assert len(bucket.pms) == 8 and len(bucket.rvals) == 8
        # A second probe after the sweep answers identically.
        assert list(store.probe(index, (0,), 999, bound=4.0)) == expected

    def test_purge_seqs_feeds_the_bucket_counters(self):
        store, index = self.make()
        self.fill(store, 20)
        store.purge_seqs(frozenset(range(10)))
        assert self.bucket(store, index, (0,)).dead == 10
