"""Unit tests for operators, Pattern taxonomy, and the parser."""

import pytest

from repro.errors import PatternError, PatternParseError
from repro.patterns import (
    And,
    Comparison,
    Kleene,
    Not,
    Or,
    Pattern,
    Primitive,
    Seq,
    parse_pattern,
)
from repro.patterns.operators import count_nary_operators


class TestOperators:
    def test_primitive(self):
        p = Primitive("A", "a")
        assert list(p.primitives()) == [p]
        assert p.variables() == ["a"]

    def test_nary_needs_two_children(self):
        with pytest.raises(PatternError):
            Seq([Primitive("A", "a")])

    def test_duplicate_variables_rejected(self):
        with pytest.raises(PatternError):
            And([Primitive("A", "a"), Primitive("B", "a")])

    def test_unary_requires_primitive(self):
        with pytest.raises(PatternError):
            Not(Seq([Primitive("A", "a"), Primitive("B", "b")]))

    def test_copy_is_deep(self):
        node = Seq([Primitive("A", "a"), Not(Primitive("B", "b"))])
        clone = node.copy()
        assert clone == node
        assert clone is not node

    def test_count_nary(self):
        nested = And(
            [Primitive("A", "a"), Or([Primitive("B", "b"), Primitive("C", "c")])]
        )
        assert count_nary_operators(nested) == 2
        simple = Seq([Primitive("A", "a"), Kleene(Primitive("B", "b"))])
        assert count_nary_operators(simple) == 1


class TestPatternTaxonomy:
    def test_pure_sequence(self):
        p = parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5")
        assert p.is_simple and p.is_pure and p.is_sequence
        assert not p.is_conjunctive and not p.is_nested

    def test_pure_conjunction(self):
        p = parse_pattern("PATTERN AND(A a, B b) WITHIN 5")
        assert p.is_conjunctive and p.is_pure

    def test_negation_not_pure(self):
        p = parse_pattern("PATTERN SEQ(A a, NOT(B b), C c) WITHIN 5")
        assert p.is_simple and not p.is_pure
        assert p.negated_variables() == ["b"]
        assert p.positive_variables() == ["a", "c"]

    def test_kleene_not_pure(self):
        p = parse_pattern("PATTERN SEQ(A a, KL(B b)) WITHIN 5")
        assert p.is_simple and not p.is_pure
        assert p.kleene_variables() == ["b"]

    def test_nested(self):
        p = parse_pattern("PATTERN AND(A a, OR(B b, C c)) WITHIN 5")
        assert p.is_nested and not p.is_simple

    def test_sequence_order(self):
        p = parse_pattern("PATTERN SEQ(A a, NOT(B b), C c) WITHIN 5")
        assert p.sequence_order() == ["a", "c"]
        q = parse_pattern("PATTERN AND(A a, B b) WITHIN 5")
        assert q.sequence_order() is None

    def test_window_must_be_positive(self):
        with pytest.raises(PatternError):
            Pattern(Seq([Primitive("A", "a"), Primitive("B", "b")]), (), 0.0)

    def test_unknown_condition_variable_rejected(self):
        from repro.patterns import Attr

        with pytest.raises(PatternError):
            Pattern(
                Seq([Primitive("A", "a"), Primitive("B", "b")]),
                [Comparison(Attr("z", "x"), "<", Attr("a", "x"))],
                5.0,
            )

    def test_size(self):
        p = parse_pattern("PATTERN SEQ(A a, NOT(B b), C c) WITHIN 5")
        assert len(p) == 3  # negated event still participates

    def test_variable_types(self):
        p = parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5")
        assert p.variable_types() == {"a": "A", "b": "B"}


class TestParser:
    def test_four_cameras_example(self):
        p = parse_pattern(
            "PATTERN SEQ(A a, B b, C c, D d) "
            "WHERE a.vehicleID = b.vehicleID = c.vehicleID = d.vehicleID "
            "WITHIN 20"
        )
        assert p.is_sequence and len(p) == 4
        assert len(p.conditions) == 3  # chained equality expands pairwise
        assert p.window == 20.0

    def test_nested_pattern_from_paper(self):
        p = parse_pattern("PATTERN AND(A a, NOT(B b), OR(C c, D d)) WITHIN 10")
        assert p.is_nested
        assert sorted(p.variable_names()) == ["a", "b", "c", "d"]

    def test_where_with_parentheses(self):
        p = parse_pattern("PATTERN SEQ(A a, B b) WHERE (a.x < b.x) WITHIN 5")
        assert len(p.conditions) == 1

    def test_where_true(self):
        p = parse_pattern("PATTERN SEQ(A a, B b) WHERE true WITHIN 5")
        assert len(p.conditions) == 0

    def test_constant_operand(self):
        p = parse_pattern("PATTERN SEQ(A a, B b) WHERE a.x > 3.5 WITHIN 5")
        assert len(p.conditions.filters_for("a")) == 1

    def test_case_insensitive_keywords(self):
        p = parse_pattern("pattern seq(A a, B b) where a.x < b.x within 5")
        assert p.is_sequence

    def test_missing_within_rejected(self):
        with pytest.raises(PatternParseError):
            parse_pattern("PATTERN SEQ(A a, B b)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(PatternParseError):
            parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5 extra")

    def test_bad_character_rejected(self):
        with pytest.raises(PatternParseError):
            parse_pattern("PATTERN SEQ(A a; B b) WITHIN 5")

    def test_not_with_two_operands_rejected(self):
        with pytest.raises(PatternParseError):
            parse_pattern("PATTERN SEQ(A a, NOT(B b, C c)) WITHIN 5")

    def test_name_passthrough(self):
        p = parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5", name="mine")
        assert p.name == "mine"
