"""Unit tests for the negation machinery (Section 5.3)."""

import pytest

from repro.engines import NegationChecker, PartialMatch
from repro.engines.negation import PreparedSpec
from repro.events import Event
from repro.patterns import Attr, Comparison, ConditionSet
from repro.patterns.transformations import NegationSpec


def ev(type_name="B", ts=0.0, seq=0, **attrs):
    return Event(type_name, ts, attrs, seq=seq)


def pm_ab(ts_a=1.0, ts_c=5.0):
    pm = PartialMatch.singleton("a", Event("A", ts_a, {}, seq=0))
    return pm.extended("c", Event("C", ts_c, {}, seq=1))


class TestPreparedSpec:
    def test_required_includes_predicate_variables(self):
        spec = NegationSpec("b", "B", preceding=("a",), following=("c",))
        conditions = ConditionSet(
            [Comparison(Attr("b", "x"), "=", Attr("d", "x"))]
        )
        prepared = PreparedSpec(spec, conditions)
        assert prepared.required == {"a", "c", "d"}

    def test_trailing_flag(self):
        bounded = PreparedSpec(
            NegationSpec("b", "B", ("a",), ("c",)), ConditionSet()
        )
        trailing = PreparedSpec(
            NegationSpec("b", "B", ("a",), ()), ConditionSet()
        )
        assert not bounded.trailing
        assert trailing.trailing

    def test_admissible_range_bounded(self):
        prepared = PreparedSpec(
            NegationSpec("b", "B", ("a",), ("c",)), ConditionSet()
        )
        lo, lo_inc, hi, hi_inc = prepared.admissible_range(pm_ab(), 10.0)
        assert (lo, hi) == (1.0, 5.0)
        assert not lo_inc and not hi_inc

    def test_admissible_range_window_sides(self):
        prepared = PreparedSpec(NegationSpec("b", "B"), ConditionSet())
        lo, lo_inc, hi, hi_inc = prepared.admissible_range(pm_ab(), 10.0)
        assert lo == pytest.approx(5.0 - 10.0)
        assert hi == pytest.approx(1.0 + 10.0)
        assert lo_inc and hi_inc


class TestNegationChecker:
    def make(self, preceding=("a",), following=("c",), predicates=()):
        spec = NegationSpec("b", "B", preceding, following)
        checker = NegationChecker([spec], ConditionSet(predicates), 10.0)
        return checker, checker.prepared[0]

    def test_inactive_without_specs(self):
        checker = NegationChecker([], ConditionSet(), 5.0)
        assert not checker.active

    def test_offer_filters_by_type(self):
        checker, _ = self.make()
        assert checker.offer(ev("B", 2.0))
        assert not checker.offer(ev("Z", 2.0))
        assert checker.buffered_events() == 1

    def test_violation_inside_range(self):
        checker, prepared = self.make()
        checker.offer(ev("B", 3.0))
        assert checker.violated(prepared, pm_ab())

    def test_no_violation_outside_range(self):
        checker, prepared = self.make()
        checker.offer(ev("B", 0.5))
        checker.offer(ev("B", 5.5))
        assert not checker.violated(prepared, pm_ab())

    def test_boundaries_exclusive_for_seq_bounds(self):
        checker, prepared = self.make()
        checker.offer(ev("B", 1.0))  # equals preceding ts -> outside
        checker.offer(ev("B", 5.0))  # equals following ts -> outside
        assert not checker.violated(prepared, pm_ab())

    def test_predicates_must_hold(self):
        predicate = Comparison(Attr("b", "x"), "=", Attr("a", "x"))
        spec = NegationSpec("b", "B", ("a",), ("c",))
        checker = NegationChecker([spec], ConditionSet([predicate]), 10.0)
        prepared = checker.prepared[0]
        pm = PartialMatch.singleton("a", Event("A", 1.0, {"x": 7}, seq=0))
        pm = pm.extended("c", Event("C", 5.0, {"x": 0}, seq=1))
        checker.offer(Event("B", 3.0, {"x": 5}, seq=2))
        assert not checker.violated(prepared, pm)
        checker.offer(Event("B", 3.5, {"x": 7}, seq=3))
        assert checker.violated(prepared, pm)

    def test_candidate_event_checked_directly(self):
        checker, prepared = self.make()
        inside = ev("B", 2.0)
        outside = ev("B", 9.0)
        assert checker.violated(prepared, pm_ab(), candidate=inside)
        assert not checker.violated(prepared, pm_ab(), candidate=outside)

    def test_deadline_is_range_end(self):
        checker, prepared = self.make(following=())
        assert checker.deadline(prepared, pm_ab()) == pytest.approx(11.0)

    def test_prune_drops_expired(self):
        checker, _ = self.make()
        checker.offer(ev("B", 1.0))
        checker.offer(ev("B", 8.0))
        checker.prune(5.0)
        assert checker.buffered_events() == 1

    def test_unary_filter_on_negated_variable(self):
        unary = Comparison(Attr("b", "x"), ">", Attr("b", "x"))
        # b.x > b.x is always false: nothing is ever buffered.
        spec = NegationSpec("b", "B", ("a",), ("c",))
        checker = NegationChecker([spec], ConditionSet([unary]), 10.0)
        assert not checker.offer(ev("B", 2.0, x=1))

    def test_specs_checkable_with(self):
        checker, prepared = self.make()
        assert checker.specs_checkable_with(frozenset({"a"})) == []
        assert checker.specs_checkable_with(frozenset({"a", "c"})) == [
            prepared
        ]

    def test_kleene_binding_in_bounds(self):
        # Preceding variable bound to a tuple: range uses the max ts.
        spec = NegationSpec("b", "B", ("k",), ())
        checker = NegationChecker([spec], ConditionSet(), 10.0)
        prepared = checker.prepared[0]
        pm = PartialMatch.kleene_singleton("k", Event("K", 1.0, {}, seq=0))
        pm = pm.kleene_extended("k", Event("K", 3.0, {}, seq=1))
        lo, lo_inc, hi, _ = prepared.admissible_range(pm, 10.0)
        assert lo == pytest.approx(3.0)
        assert not lo_inc


class TestLeadingNegation:
    """Leading NOT regression: the forbidden range ``[max_ts − W,
    following)`` is final only on the complete match, so engines must
    defer the check to completion (they used to evaluate it at the
    lowest covering node with a partial max_ts and over-reject)."""

    PATTERN = "PATTERN SEQ(NOT(C c), A a, B b) WITHIN 10"

    def stream(self):
        from repro.events import Stream

        # C@0.5 precedes A@1.0; the match completes at B@11.0, so the
        # admissible range is [1.0, 1.0) — empty — and C cannot veto.
        return Stream([Event("C", 0.5), Event("A", 1.0), Event("B", 11.0)])

    def test_leading_specs_split_from_checkable(self):
        from repro.patterns import decompose, parse_pattern

        d = decompose(parse_pattern(self.PATTERN))
        checker = NegationChecker(
            d.negations, d.negation_conditions, d.window
        )
        assert checker.specs_checkable_with(frozenset({"a", "b"})) == []
        assert len(checker.leading_specs()) == 1

    def test_engines_agree_with_reference(self):
        from repro.engines import (
            NFAEngine,
            TreeEngine,
            reference_match_keys,
        )
        from repro.patterns import decompose, parse_pattern
        from repro.plans import enumerate_bushy_trees, enumerate_orders

        stream = self.stream()
        d = decompose(parse_pattern(self.PATTERN))
        expected = reference_match_keys(d, stream)
        assert len(expected) == 1
        for order in enumerate_orders(d.positive_variables):
            assert {
                m.key() for m in NFAEngine(d, order).run(stream)
            } == expected
        for tree in enumerate_bushy_trees(d.positive_variables):
            assert {
                m.key() for m in TreeEngine(d, tree).run(stream)
            } == expected
