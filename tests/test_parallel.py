"""Parallel partitioned execution (:mod:`repro.parallel`).

The load-bearing suite is the seeded randomized equivalence matrix:
for every partitioner (key / window / query) and every runtime (tree,
lazy NFA, multi-query DAG), the parallel runtime's merged output must
be byte-identical — canonically ordered match records, see
:mod:`repro.parallel.ordering` — to single-threaded execution of the
same plans, across worker counts.  Everything else (partitioner
applicability, slice math, metrics accounting, backends, error paths)
supports that invariant.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    ParallelConfig,
    ParallelError,
    ParallelExecutor,
    Stream,
    Workload,
    build_engines,
    canonical_order,
    estimate_pattern_catalog,
    parse_pattern,
    plan_pattern,
    run_workload,
)
from repro.events import Event
from repro.parallel import (
    KeyPartitioner,
    WindowPartitioner,
    key_routing_map,
    match_min_ts,
    match_records,
    split_shared_plan,
)
from repro.patterns import decompose


def keyed_stream(seed: int, count: int = 300, keys: int = 5) -> Stream:
    """A/B/C/D events with an equi-join key ``k`` and theta payload ``v``."""
    rng = random.Random(seed)
    events, t = [], 0.0
    for _ in range(count):
        t += rng.uniform(0.01, 0.09)
        events.append(
            Event(
                rng.choice("ABCD"),
                t,
                {"k": rng.randrange(keys), "v": rng.random()},
            )
        )
    return Stream(events)


def plans_for(text: str, stream: Stream, algorithm: str):
    pattern = parse_pattern(text)
    catalog = estimate_pattern_catalog(pattern, stream)
    return plan_pattern(pattern, catalog, algorithm=algorithm)


def assert_identical(parallel_out, serial_out):
    assert match_records(parallel_out) == match_records(
        canonical_order(serial_out)
    )


KEYED = "PATTERN SEQ(A a, B b, C c) WHERE a.k = b.k AND b.k = c.k WITHIN 1.5"
THETA = "PATTERN SEQ(A a, B b, C c) WHERE a.v < b.v AND b.v < c.v WITHIN 0.9"
KLEENE = "PATTERN SEQ(A a, KL(B b), C c) WHERE a.v < c.v WITHIN 0.8"
NEG_TRAIL = "PATTERN SEQ(A a, B b, NOT(D d)) WHERE a.v < b.v WITHIN 1.2"
NEG_LEAD = "PATTERN SEQ(NOT(D d), A a, C c) WITHIN 0.9"

#: GREEDY yields an order plan (lazy NFA); ZSTREAM a tree plan.
RUNTIMES = ("GREEDY", "ZSTREAM")


class TestKeyEquivalence:
    @pytest.mark.parametrize("algorithm", RUNTIMES)
    @pytest.mark.parametrize("seed", (3, 11))
    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_matches_identical_to_serial(self, algorithm, seed, workers):
        stream = keyed_stream(seed)
        planned = plans_for(KEYED, stream, algorithm)
        serial = build_engines(planned).run(stream)
        executor = ParallelExecutor(
            planned,
            ParallelConfig(
                workers=workers, partitioner="key", backend="serial",
                batch_size=64,
            ),
        )
        assert_identical(executor.run(stream), serial)
        assert executor.partitioner_name == "key"
        # Key routing never duplicates, so no boundary handling happens.
        assert executor.metrics.boundary_duplicates_dropped == 0

    def test_auto_picks_key_for_covered_pattern(self):
        stream = keyed_stream(7)
        planned = plans_for(KEYED, stream, "GREEDY")
        executor = ParallelExecutor(
            planned, ParallelConfig(workers=2, backend="serial")
        )
        assert executor.partitioner_name == "key"

    def test_router_drops_only_foreign_types(self):
        stream = keyed_stream(9)  # contains D events no variable admits
        planned = plans_for(KEYED, stream, "GREEDY")
        executor = ParallelExecutor(
            planned,
            ParallelConfig(workers=3, partitioner="key", backend="serial"),
        )
        executor.run(stream)
        d_count = stream.count_by_type().get("D", 0)
        assert executor.events_in == len(stream)
        assert executor.metrics.events_routed == len(stream) - d_count
        # Each routed event is processed by exactly one worker.
        assert executor.metrics.events_processed == len(stream) - d_count

    def test_unhashable_key_raises(self):
        events = [
            Event("A", 0.1, {"k": [1], "v": 0.5}),
            Event("B", 0.2, {"k": [1], "v": 0.6}),
            Event("C", 0.3, {"k": [1], "v": 0.7}),
        ]
        stream = keyed_stream(1)
        planned = plans_for(KEYED, stream, "GREEDY")
        executor = ParallelExecutor(
            planned,
            ParallelConfig(workers=2, partitioner="key", backend="serial"),
        )
        with pytest.raises(ParallelError, match="unhashable"):
            executor.run(Stream(events))


class TestWindowEquivalence:
    @pytest.mark.parametrize("algorithm", RUNTIMES)
    @pytest.mark.parametrize(
        "text", (THETA, KLEENE, NEG_TRAIL, NEG_LEAD), ids=("theta", "kleene", "neg_trail", "neg_lead")
    )
    @pytest.mark.parametrize("workers", (1, 3))
    def test_matches_identical_to_serial(self, algorithm, text, workers):
        stream = keyed_stream(5)
        planned = plans_for(text, stream, algorithm)
        serial = build_engines(planned, max_kleene_size=3).run(stream)
        executor = ParallelExecutor(
            planned,
            ParallelConfig(
                workers=workers, partitioner="window", backend="serial",
                batch_size=32,
            ),
            max_kleene_size=3,
        )
        assert_identical(executor.run(stream), serial)

    @pytest.mark.parametrize("seed", (2, 4, 8))
    def test_randomized_sweep_short_spans(self, seed):
        # Spans far below the window stress the overlap/dedup math.
        stream = keyed_stream(seed, count=200)
        planned = plans_for(THETA, stream, "ZSTREAM")
        serial = build_engines(planned).run(stream)
        executor = ParallelExecutor(
            planned,
            ParallelConfig(
                workers=4, partitioner="window", backend="serial",
                span=0.3,
            ),
        )
        out = executor.run(stream)
        assert_identical(out, serial)
        if serial:
            assert executor.metrics.boundary_duplicates_dropped > 0
        # Boundary copies are excluded from emission accounting.
        assert executor.metrics.matches_emitted == len(serial)

    def test_ownership_is_a_partition_of_matches(self):
        stream = keyed_stream(6)
        planned = plans_for(THETA, stream, "GREEDY")
        executor = ParallelExecutor(
            planned,
            ParallelConfig(workers=3, partitioner="window", backend="serial"),
        )
        out = executor.run(stream)
        keys = match_records(out)
        assert len(keys) == len(set(keys)), "boundary dedup leaked a duplicate"


class TestMultiQuery:
    WORKLOAD = (
        "PATTERN SEQ(A a, B b) WHERE a.k = b.k WITHIN 1.0",
        "PATTERN SEQ(A a, B b, C c) WHERE a.k = b.k AND b.v < c.v WITHIN 1.0",
        "PATTERN SEQ(B x, C y) WHERE x.v < y.v WITHIN 0.7",
    )

    @pytest.mark.parametrize("partitioner", ("window", "query"))
    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_workload_identical_to_shared_engine(self, partitioner, workers):
        stream = keyed_stream(13)
        workload = Workload.of(*self.WORKLOAD)
        base = run_workload(workload, stream, algorithm="GREEDY")
        result = run_workload(
            workload,
            stream,
            algorithm="GREEDY",
            parallel=ParallelConfig(
                workers=workers, partitioner=partitioner, backend="serial"
            ),
        )
        assert set(result.matches) == set(base.matches)
        for query in base.matches:
            assert match_records(result.matches[query]) == match_records(
                canonical_order(base.matches[query])
            )

    def test_key_partitioned_workload(self):
        stream = keyed_stream(17)
        workload = Workload.of(
            "PATTERN SEQ(A a, B b) WHERE a.k = b.k WITHIN 1.0",
            "PATTERN SEQ(A a, C c) WHERE a.k = c.k WITHIN 1.0",
        )
        base = run_workload(workload, stream)
        result = run_workload(
            workload,
            stream,
            parallel=ParallelConfig(workers=3, backend="serial"),
        )
        assert result.engine.partitioner_name == "key"
        for query in base.matches:
            assert match_records(result.matches[query]) == match_records(
                canonical_order(base.matches[query])
            )

    def test_split_shared_plan_partitions_queries(self):
        stream = keyed_stream(19)
        workload = Workload.of(*self.WORKLOAD)
        from repro import plan_workload

        catalogs = {
            name: estimate_pattern_catalog(pattern, stream)
            for name, pattern in workload.items()
        }
        plan = plan_workload(workload, catalogs)
        subs = split_shared_plan(plan, 2)
        assert len(subs) == 2
        covered = [q for sub in subs for q in sub.query_names]
        assert sorted(covered) == sorted(plan.query_names)
        for sub in subs:
            indexes = {node.index for node in sub.nodes}
            for root in sub.roots:
                assert root.node.index in indexes
            # children of every kept join are kept too
            for node in sub.nodes:
                if hasattr(node, "left"):
                    assert node.left.index in indexes
                    assert node.right.index in indexes

    def test_query_feeder_routes_per_worker_relevant_types_only(self):
        # D events feed no query; A events feed only the first query's
        # worker, C events only the second's.  The driver must ship each
        # event to exactly the workers whose sub-plans reference it.
        stream = keyed_stream(27, count=200)
        workload = Workload.of(
            "PATTERN SEQ(A a, B b) WHERE a.k = b.k WITHIN 1.0",
            "PATTERN SEQ(B x, C y) WHERE x.v < y.v WITHIN 0.7",
        )
        result = run_workload(
            workload,
            stream,
            parallel=ParallelConfig(
                workers=2, partitioner="query", backend="serial"
            ),
        )
        counts = stream.count_by_type()
        expected = (counts["A"] + counts["B"]) + (counts["B"] + counts["C"])
        assert result.metrics.events_routed == expected
        assert result.events == len(stream)

    def test_more_workers_than_queries(self):
        stream = keyed_stream(23, count=120)
        workload = Workload.of(*self.WORKLOAD)
        result = run_workload(
            workload,
            stream,
            parallel=ParallelConfig(
                workers=8, partitioner="query", backend="serial"
            ),
        )
        assert result.metrics.worker_count == 3  # one group per query


class TestBackends:
    """threads/processes must run the identical code path as serial."""

    @pytest.mark.parametrize("backend", ("threads", "processes"))
    def test_backend_equivalence(self, backend):
        stream = keyed_stream(29, count=150)
        planned = plans_for(KEYED, stream, "GREEDY")
        serial = build_engines(planned).run(stream)
        executor = ParallelExecutor(
            planned,
            ParallelConfig(
                workers=2, partitioner="key", backend=backend, batch_size=32
            ),
        )
        assert_identical(executor.run(stream), serial)
        assert executor.metrics.worker_count == 2

    def test_shared_plan_crosses_the_process_boundary(self):
        # The shared-plan DAG (nodes, renamings, predicates) must pickle
        # into pool workers; window partitioning exercises slice engines
        # built from the shipped spec.
        stream = keyed_stream(83, count=150)
        workload = Workload.of(
            "PATTERN SEQ(A a, B b) WHERE a.k = b.k WITHIN 1.0",
            "PATTERN SEQ(B x, C y) WHERE x.v < y.v WITHIN 0.7",
        )
        base = run_workload(workload, stream)
        result = run_workload(
            workload,
            stream,
            parallel=ParallelConfig(
                workers=2, partitioner="window", backend="processes"
            ),
        )
        for query in base.matches:
            assert match_records(result.matches[query]) == match_records(
                canonical_order(base.matches[query])
            )

    def test_thread_channel_stop_terminates_the_thread(self):
        # stop() must free the worker thread even with queued batches
        # (the epoch check drops stale work, so the STOP behind a
        # backlog is reached quickly instead of never).
        from repro.parallel import EngineSpec
        from repro.service.protocol import MSG_BATCH, MSG_INIT, MSG_RESET
        from repro.service.transport import ThreadChannel

        stream = keyed_stream(89, count=40)
        planned = plans_for(KEYED, stream, "GREEDY")

        channel = ThreadChannel(worker_id=0)
        channel.send((MSG_INIT, EngineSpec.from_planned(planned)))
        channel.send((MSG_RESET, 1, {"mode": "single"}))
        channel.send((MSG_BATCH, 1, 0, [(0, event) for event in stream]))
        # A stale-epoch batch must be dropped, not processed.
        channel.send((MSG_BATCH, 0, 1, [(0, event) for event in stream]))
        channel.stop()
        assert not channel._thread.is_alive()

    def test_feeder_failure_aborts_without_deadlock(self):
        stream = keyed_stream(31, count=40)
        planned = plans_for(KEYED, stream, "GREEDY")
        executor = ParallelExecutor(
            planned,
            ParallelConfig(workers=2, partitioner="key", backend="threads"),
        )
        # Unhashable key raises in the driver, after workers started —
        # the abort path must not deadlock.
        bad = Stream([Event("A", 0.1, {"k": [1], "v": 0.5})])
        with pytest.raises(ParallelError):
            executor.run(bad)


class TestPartitionerApplicability:
    def test_key_map_for_covered_chain(self):
        decomposed = decompose(parse_pattern(KEYED))
        assert key_routing_map([decomposed]) == {"A": "k", "B": "k", "C": "k"}

    @pytest.mark.parametrize(
        "text",
        (
            THETA,  # no equalities at all
            "PATTERN SEQ(A a, B b, C c) WHERE a.k = b.k WITHIN 1",  # c uncovered
            KLEENE,  # Kleene variable
            "PATTERN SEQ(A a, B b, NOT(D d)) WHERE a.k = b.k WITHIN 1",  # negation
        ),
        ids=("theta", "uncovered", "kleene", "negation"),
    )
    def test_key_map_inapplicable(self, text):
        decomposed = decompose(parse_pattern(text))
        assert key_routing_map([decomposed]) is None

    def test_conflicting_maps_across_queries(self):
        one = decompose(
            parse_pattern("PATTERN SEQ(A a, B b) WHERE a.k = b.k WITHIN 1")
        )
        two = decompose(
            parse_pattern("PATTERN SEQ(A a, C c) WHERE a.v = c.v WITHIN 1")
        )
        assert key_routing_map([one]) == {"A": "k", "B": "k"}
        assert key_routing_map([two]) == {"A": "v", "C": "v"}
        assert key_routing_map([one, two]) is None  # A routes by k vs v

    def test_same_type_two_variables_need_common_attr(self):
        # Both A-variables join on k: routable.  On different attrs: not.
        ok = decompose(
            parse_pattern("PATTERN SEQ(A a, A b) WHERE a.k = b.k WITHIN 1")
        )
        assert key_routing_map([ok]) == {"A": "k"}
        mixed = decompose(
            parse_pattern("PATTERN SEQ(A a, A b) WHERE a.k = b.v WITHIN 1")
        )
        assert key_routing_map([mixed]) is None

    def test_requested_key_on_inapplicable_pattern_raises(self):
        stream = keyed_stream(37, count=60)
        planned = plans_for(THETA, stream, "GREEDY")
        with pytest.raises(ParallelError, match="inapplicable"):
            ParallelExecutor(
                planned, ParallelConfig(workers=2, partitioner="key")
            )

    def test_query_partitioner_needs_shared_plan(self):
        stream = keyed_stream(41, count=60)
        planned = plans_for(KEYED, stream, "GREEDY")
        with pytest.raises(ParallelError, match="SharedPlan"):
            ParallelExecutor(
                planned, ParallelConfig(workers=2, partitioner="query")
            )

    def test_restrictive_selection_rejected(self):
        stream = keyed_stream(43, count=60)
        pattern = parse_pattern(KEYED)
        catalog = estimate_pattern_catalog(pattern, stream)
        planned = plan_pattern(
            pattern, catalog, algorithm="GREEDY", selection="next"
        )
        with pytest.raises(ParallelError, match="selection"):
            ParallelExecutor(planned, ParallelConfig(workers=2))

    def test_config_validation(self):
        with pytest.raises(ParallelError):
            ParallelConfig(partitioner="bogus")
        with pytest.raises(ParallelError):
            ParallelConfig(backend="bogus")
        with pytest.raises(ParallelError):
            ParallelConfig(batch_size=0)


class TestWindowPartitionerMath:
    def test_every_timestamp_has_its_owner_slice(self):
        partitioner = WindowPartitioner(window=2.0, span=1.5, workers=3)
        partitioner.start(10.0)
        rng = random.Random(0)
        for _ in range(200):
            ts = 10.0 + rng.uniform(0, 50)
            slices = partitioner.slices_for(ts)
            owner = next(
                s
                for s in slices
                if partitioner.owner_bounds(s)[0]
                <= ts
                < partitioner.owner_bounds(s)[1]
            )
            # every event within W of an owned range is delivered
            for s in slices:
                lo, hi = partitioner.owner_bounds(s)
                assert lo - 2.0 - 1e-9 <= ts <= hi + 2.0 + 1e-9
            assert owner is not None

    def test_pad_covers_full_window_both_sides(self):
        partitioner = WindowPartitioner(window=1.0, span=4.0, workers=2)
        partitioner.start(0.0)
        # Slice 1 owns [4, 8); it must receive every event in [3, 9]
        # (delivery is inclusive with ulp slack — over-delivery is safe,
        # under-delivery changes the match set).
        for ts in (3.0, 3.5, 4.0, 7.99, 8.5, 8.999, 9.0):
            assert 1 in partitioner.slices_for(ts), ts
        for ts in (2.9, 9.1, 9.5):
            assert 1 not in partitioner.slices_for(ts), ts

    def test_ownership_tiles_exactly_under_float_arithmetic(self):
        # (t0 + i*span) + span can differ by one ulp from
        # t0 + (i+1)*span; ownership intervals must share the identical
        # float endpoint or a boundary timestamp is owned by zero or
        # two slices.  These constants hit the one-ulp gap.
        t0, span = 37.23975427257312, 1.3216166985643367
        partitioner = WindowPartitioner(window=0.2, span=span, workers=3)
        partitioner.start(t0)
        boundary = (t0 + span) + span  # one ulp below t0 + 2*span
        assert boundary != t0 + 2 * span
        owners = [
            s
            for s in partitioner.slices_for(boundary)
            if partitioner.owner_bounds(s)[0]
            <= boundary
            < partitioner.owner_bounds(s)[1]
        ]
        assert len(owners) == 1

    def test_boundary_timestamp_match_survives_end_to_end(self):
        # A match starting exactly on the ulp-off slice boundary must be
        # emitted exactly once (regression: it was silently dropped).
        t0, span = 37.23975427257312, 1.3216166985643367
        boundary = (t0 + span) + span
        events = [
            Event("A", t0, {"v": 0.1}),
            Event("A", boundary, {"v": 0.2}),
            Event("B", boundary + 0.1, {"v": 0.3}),
        ]
        stream = Stream(events)
        pattern = parse_pattern("PATTERN SEQ(A a, B b) WITHIN 0.2")
        planned = plan_pattern(
            pattern, estimate_pattern_catalog(pattern, stream)
        )
        serial = build_engines(planned).run(stream)
        assert len(serial) == 1
        executor = ParallelExecutor(
            planned,
            ParallelConfig(
                workers=2, partitioner="window", backend="serial", span=span
            ),
        )
        assert_identical(executor.run(stream), serial)

    def test_slice_engines_evicted_as_the_feed_advances(self):
        # Window-mode workers must free slice engines once the globally
        # ordered feed passes their delivery range — memory stays
        # O(active slices) over a long stream with a small span.
        from repro.parallel import EngineSpec, TaskRunner, WindowPartitioner
        from repro.parallel.worker import WorkerTask

        stream = keyed_stream(79, count=300)  # duration ~15s
        planned = plans_for(THETA, stream, "GREEDY")
        serial = build_engines(planned).run(stream)
        span = 0.25  # ~60 slices over the stream
        t0 = stream[0].timestamp
        partitioner = WindowPartitioner(window=0.9, span=span, workers=1)
        partitioner.start(t0)
        task = WorkerTask(
            EngineSpec.from_planned(planned),
            "window",
            t0=t0,
            span=span,
            window=0.9,
        )
        runner = TaskRunner(task)
        peak_engines = 0
        for event in stream:
            entries = [(s, event) for s in partitioner.slices_for(event.timestamp)]
            runner.feed(entries)
            peak_engines = max(peak_engines, len(runner._engines))
        result = runner.finish()
        total_slices = len(
            {s for e in stream for s in partitioner.slices_for(e.timestamp)}
        )
        assert total_slices > 20
        assert peak_engines <= 12, peak_engines  # active window only
        assert match_records(canonical_order(result.matches)) == match_records(
            canonical_order(serial)
        )

    def test_window_peaks_reflect_active_slices_not_total(self):
        # Retired slices never coexist: worker peak memory must not sum
        # over every slice that ever lived (regression: ~slice-count
        # inflation of peak_partial_matches/peak_buffered_events).
        stream = keyed_stream(91, count=300)
        planned = plans_for(THETA, stream, "GREEDY")
        engine = build_engines(planned)
        engine.run(stream)
        serial_peak = engine.metrics.peak_partial_matches
        executor = ParallelExecutor(
            planned,
            ParallelConfig(
                workers=1, partitioner="window", backend="serial", span=0.5
            ),
        )
        executor.run(stream)
        # A handful of overlapping slices are active at once; dozens
        # were created over the run.
        assert executor.metrics.peak_partial_matches <= 6 * serial_peak

    def test_auto_span_clamped_to_window(self):
        # W >> duration/workers must not explode slice replication.
        stream = keyed_stream(97, count=200)  # duration ~10
        planned = plans_for(THETA, stream, "GREEDY")  # WITHIN 0.9
        executor = ParallelExecutor(
            planned,
            ParallelConfig(workers=8, partitioner="window", backend="serial"),
        )
        serial = build_engines(planned).run(stream)
        assert_identical(executor.run(stream), serial)
        relevant = sum(
            1 for e in stream if e.type in ("A", "B", "C")
        )
        assert executor.metrics.events_routed <= 3 * relevant

    def test_unpicklable_task_reports_parallel_error_under_spawn(self):
        stream = keyed_stream(101, count=30)
        planned = plans_for(KEYED, stream, "GREEDY")
        executor = ParallelExecutor(
            planned,
            ParallelConfig(
                workers=2,
                partitioner="key",
                backend="processes",
                start_method="spawn",
            ),
        )
        # Simulate an unpicklable predicate riding in the spec (spawn
        # pickles the whole task at Process.start).
        executor._spec.parts[0]["unpicklable"] = lambda: None
        with pytest.raises(ParallelError, match="pickle"):
            executor.run(stream)

    @pytest.mark.parametrize("seed", (1, 2, 3))
    @pytest.mark.parametrize("span", (0.3, 0.7, 1.1))
    def test_grid_aligned_timestamps_stress_boundaries(self, seed, span):
        # Timestamps on a 0.1 grid with the window an exact grid
        # multiple: many matches span *exactly* W and many events land
        # *exactly* on slice boundaries — the knife-edge cases where
        # rounding mismatches between delivery and ownership would drop
        # or duplicate matches.
        rng = random.Random(seed)
        events, tick = [], 0
        for _ in range(150):
            tick += rng.randrange(1, 4)
            events.append(
                Event(rng.choice("AB"), tick * 0.1, {"v": rng.random()})
            )
        stream = Stream(events)
        pattern = parse_pattern("PATTERN SEQ(A a, B b) WITHIN 0.3")
        planned = plan_pattern(
            pattern, estimate_pattern_catalog(pattern, stream)
        )
        serial = build_engines(planned).run(stream)
        executor = ParallelExecutor(
            planned,
            ParallelConfig(
                workers=3, partitioner="window", backend="serial", span=span
            ),
        )
        assert_identical(executor.run(stream), serial)

    def test_explicit_zero_span_rejected(self):
        with pytest.raises(ParallelError, match="span"):
            ParallelConfig(partitioner="window", span=0.0)
        with pytest.raises(ParallelError, match="span"):
            ParallelConfig(span=-1.0)

    def test_span_shorter_than_window_still_partitions(self):
        partitioner = WindowPartitioner(window=5.0, span=1.0, workers=4)
        partitioner.start(0.0)
        slices = partitioner.slices_for(7.0)
        # padded range is span + 2W = 11 long -> ~11 slices see the event
        assert len(slices) >= 10
        owners = [
            s
            for s in slices
            if partitioner.owner_bounds(s)[0] <= 7.0 < partitioner.owner_bounds(s)[1]
        ]
        assert len(owners) == 1


class TestMetricsAndPlumbing:
    def test_merged_metrics_shape(self):
        stream = keyed_stream(47)
        planned = plans_for(KEYED, stream, "ZSTREAM")
        serial_engine = build_engines(planned)
        serial = serial_engine.run(stream)
        executor = ParallelExecutor(
            planned,
            ParallelConfig(workers=4, partitioner="key", backend="serial"),
        )
        out = executor.run(stream)
        metrics = executor.metrics
        assert metrics.worker_count == 4
        assert metrics.matches_emitted == len(serial) == len(out)
        assert metrics.events_routed <= len(stream)
        assert len(metrics.latencies) == len(serial)
        summary = metrics.summary()
        for field in ("events_routed", "boundary_duplicates_dropped", "worker_count"):
            assert field in summary

    def test_engine_metrics_merge_disjoint_flag(self):
        from repro.engines import EngineMetrics

        a = EngineMetrics(events_processed=10, matches_emitted=1)
        b = EngineMetrics(events_processed=7, matches_emitted=2)
        same = a.merge(b)
        shard = a.merge(b, disjoint_streams=True)
        assert same.events_processed == 10
        assert shard.events_processed == 17
        assert same.matches_emitted == shard.matches_emitted == 3

    def test_build_engines_parallel_hook(self):
        stream = keyed_stream(53, count=100)
        planned = plans_for(KEYED, stream, "GREEDY")
        executor = build_engines(
            planned, parallel=ParallelConfig(workers=2, backend="serial")
        )
        assert isinstance(executor, ParallelExecutor)
        serial = build_engines(planned).run(stream)
        assert_identical(executor.run(stream), serial)
        # int shorthand configures the worker count
        shorthand = build_engines(planned, parallel=2)
        assert shorthand.workers == 2

    def test_throughput_reported(self):
        stream = keyed_stream(59, count=100)
        planned = plans_for(KEYED, stream, "GREEDY")
        executor = ParallelExecutor(
            planned, ParallelConfig(workers=2, backend="serial")
        )
        executor.run(stream)
        assert executor.events_in == len(stream)
        assert executor.throughput > 0

    def test_match_min_ts_helper(self):
        stream = keyed_stream(61, count=80)
        planned = plans_for(KEYED, stream, "GREEDY")
        matches = build_engines(planned).run(stream)
        for match in matches:
            times = [
                e.timestamp
                for v in match.bindings.values()
                for e in (v if isinstance(v, tuple) else (v,))
            ]
            assert match_min_ts(match) == min(times)


class TestChunkedInput:
    def test_parallel_over_generator_without_materialization(self):
        materialized = keyed_stream(67, count=200)
        planned = plans_for(KEYED, materialized, "GREEDY")
        serial = build_engines(planned).run(materialized)
        executor = ParallelExecutor(
            planned,
            ParallelConfig(workers=2, partitioner="key", backend="serial"),
        )
        chunked = Stream.from_iterable(
            (Event(e.type, e.timestamp, e.attributes) for e in materialized),
            chunk_size=64,
        )
        assert_identical(executor.run(chunked), serial)

    def test_window_over_generator_requires_span(self):
        materialized = keyed_stream(71, count=80)
        planned = plans_for(THETA, materialized, "GREEDY")
        serial = build_engines(planned).run(materialized)
        executor = ParallelExecutor(
            planned,
            ParallelConfig(workers=2, partitioner="window", backend="serial"),
        )
        chunked = Stream.from_iterable(iter(list(materialized)))
        with pytest.raises(ParallelError, match="span"):
            executor.run(chunked)
        # The precondition check must fire before the single-pass source
        # is touched, so the caller can retry with a span.
        assert len(list(chunked)) == len(materialized)
        with_span = ParallelExecutor(
            planned,
            ParallelConfig(
                workers=2, partitioner="window", backend="serial", span=2.0
            ),
        )
        chunked = Stream.from_iterable(
            (Event(e.type, e.timestamp, e.attributes) for e in materialized)
        )
        assert_identical(with_span.run(chunked), serial)

    def test_empty_stream(self):
        stream = keyed_stream(73, count=50)
        planned = plans_for(THETA, stream, "GREEDY")
        executor = ParallelExecutor(
            planned,
            ParallelConfig(workers=2, partitioner="window", backend="serial"),
        )
        assert executor.run(Stream()) == []
