"""Unit tests for the event model and streams."""

import pytest

from repro.events import (
    Event,
    EventType,
    Stream,
    StreamOrderError,
    read_stream_csv,
    sliding_window_counts,
    write_stream_csv,
)


class TestEventType:
    def test_name_and_attributes(self):
        et = EventType("MSFT", ("price", "difference"))
        assert et.name == "MSFT"
        assert et.attributes == ("price", "difference")

    def test_equality_by_name(self):
        assert EventType("A") == EventType("A", ("x",))
        assert EventType("A") != EventType("B")
        assert hash(EventType("A")) == hash(EventType("A", ("y",)))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            EventType("")


class TestEvent:
    def test_attribute_access(self):
        e = Event("A", 1.5, {"x": 3, "name": "hello"})
        assert e["x"] == 3
        assert e["name"] == "hello"
        assert e["timestamp"] == 1.5
        assert e["ts"] == 1.5
        assert e.get("missing") is None
        assert e.get("missing", 9) == 9

    def test_contains(self):
        e = Event("A", 1.0, {"x": 1})
        assert "x" in e
        assert "timestamp" in e
        assert "seq" in e
        assert "y" not in e

    def test_seq_assignment_is_copy(self):
        e = Event("A", 1.0, {"x": 1})
        e2 = e.with_seq(5)
        assert e.seq == -1
        assert e2.seq == 5
        assert e2["x"] == 1

    def test_partition_assignment(self):
        e = Event("A", 1.0).with_partition("p1")
        assert e.partition == "p1"

    def test_attributes_view_is_copy(self):
        e = Event("A", 1.0, {"x": 1})
        view = e.attributes
        view["x"] = 99
        assert e["x"] == 1

    def test_equality_and_hash(self):
        a = Event("A", 1.0, {"x": 1}, seq=0)
        b = Event("A", 1.0, {"x": 1}, seq=0)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Event("A", 1.0, {"x": 2}, seq=0)


class TestStream:
    def test_sequences_assigned(self):
        s = Stream([Event("A", 1.0), Event("B", 2.0)])
        assert [e.seq for e in s] == [0, 1]

    def test_out_of_order_rejected(self):
        with pytest.raises(StreamOrderError):
            Stream([Event("A", 2.0), Event("B", 1.0)])

    def test_sort_option(self):
        s = Stream([Event("A", 2.0), Event("B", 1.0)], sort=True)
        assert [e.type for e in s] == ["B", "A"]
        assert [e.seq for e in s] == [0, 1]

    def test_equal_timestamps_allowed(self):
        s = Stream([Event("A", 1.0), Event("B", 1.0)])
        assert len(s) == 2

    def test_duration(self):
        assert Stream().duration == 0.0
        assert Stream([Event("A", 1.0)]).duration == 0.0
        s = Stream([Event("A", 1.0), Event("B", 4.0)])
        assert s.duration == pytest.approx(3.0)

    def test_type_names_and_counts(self):
        s = Stream([Event("B", 1.0), Event("A", 2.0), Event("B", 3.0)])
        assert s.type_names() == ["A", "B"]
        assert s.count_by_type() == {"A": 1, "B": 2}

    def test_filter_and_restrict(self):
        s = Stream([Event("A", 1.0, {"x": 1}), Event("B", 2.0, {"x": 5})])
        assert len(s.filter(lambda e: e["x"] > 2)) == 1
        assert s.restrict_types(["A"]).type_names() == ["A"]

    def test_slice_time_half_open(self):
        s = Stream([Event("A", 1.0), Event("A", 2.0), Event("A", 3.0)])
        sliced = s.slice_time(1.0, 3.0)
        assert [e.timestamp for e in sliced] == [1.0, 2.0]

    def test_take(self):
        s = Stream([Event("A", float(i)) for i in range(5)])
        assert len(s.take(3)) == 3

    def test_merge_preserves_order(self):
        s1 = Stream([Event("A", 1.0), Event("A", 3.0)])
        s2 = Stream([Event("B", 2.0)])
        merged = Stream.merge([s1, s2])
        assert [e.type for e in merged] == ["A", "B", "A"]
        assert [e.seq for e in merged] == [0, 1, 2]

    def test_with_partitions(self):
        s = Stream([Event("A", 1.0, {"x": 1}), Event("A", 2.0, {"x": 2})])
        partitioned = s.with_partitions(lambda e: f"p{e['x']}")
        assert [e.partition for e in partitioned] == ["p1", "p2"]


class TestSlidingWindowCounts:
    def test_counts_within_window(self):
        s = Stream([Event("A", 0.0), Event("A", 1.0), Event("A", 5.0)])
        counts = sliding_window_counts(s, window=2.0)
        assert counts == [1, 2, 1]

    def test_type_filter(self):
        s = Stream([Event("A", 0.0), Event("B", 0.5), Event("A", 1.0)])
        assert sliding_window_counts(s, 2.0, type_name="A") == [1, 2]


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        s = Stream(
            [
                Event("A", 1.0, {"x": 1.5, "tag": "hello"}),
                Event("B", 2.0, {"y": -3.0}),
            ]
        )
        path = tmp_path / "stream.csv"
        write_stream_csv(s, path)
        back = read_stream_csv(path)
        assert len(back) == 2
        assert back[0]["x"] == 1.5
        assert back[0]["tag"] == "hello"
        assert back[1]["y"] == -3.0
        assert "x" not in back[1]

    def test_empty_stream(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_stream_csv(Stream(), path)
        assert len(read_stream_csv(path)) == 0

    def test_partition_round_trip(self, tmp_path):
        s = Stream([Event("A", 1.0, partition="p7")])
        path = tmp_path / "part.csv"
        write_stream_csv(s, path)
        assert read_stream_csv(path)[0].partition == "p7"


class TestChunkedStream:
    def events(self, n=10, step=0.5):
        return [Event("A", i * step, {"i": i}) for i in range(n)]

    def test_yields_seq_stamped_events_lazily(self):
        pulled = []

        def source():
            for event in self.events(10):
                pulled.append(event.timestamp)
                yield event

        chunked = Stream.from_iterable(source(), chunk_size=4)
        iterator = iter(chunked)
        first = next(iterator)
        assert first.seq == 0
        # only the first chunk was pulled from the generator
        assert len(pulled) == 4
        rest = list(iterator)
        assert [e.seq for e in rest] == list(range(1, 10))
        assert chunked.events_seen == 10

    def test_matches_materialized_stream(self):
        events = self.events(23)
        chunked = list(Stream.from_iterable(iter(events), chunk_size=5))
        materialized = list(Stream(events))
        assert [(e.type, e.timestamp, e.seq) for e in chunked] == [
            (e.type, e.timestamp, e.seq) for e in materialized
        ]

    def test_order_enforced_across_chunk_boundary(self):
        events = [Event("A", 1.0), Event("A", 2.0), Event("A", 1.5)]
        chunked = Stream.from_iterable(iter(events), chunk_size=2)
        with pytest.raises(StreamOrderError):
            list(chunked)

    def test_chunk_validated_before_any_of_it_is_yielded(self):
        events = [Event("A", 1.0), Event("A", 0.5)]
        iterator = iter(Stream.from_iterable(iter(events), chunk_size=2))
        # the bad event is inside the first chunk: nothing comes out
        with pytest.raises(StreamOrderError):
            next(iterator)

    def test_single_pass_only(self):
        chunked = Stream.from_iterable(iter(self.events(3)))
        assert len(list(chunked)) == 3
        with pytest.raises(Exception, match="single-pass"):
            iter(chunked)

    def test_engine_runs_over_chunked_stream(self):
        from repro import build_engines, estimate_pattern_catalog
        from repro import parse_pattern, plan_pattern

        events = [
            Event(("A", "B")[i % 2], i * 0.3, {"x": i % 2}) for i in range(40)
        ]
        stream = Stream(events)
        pattern = parse_pattern("PATTERN SEQ(A a, B b) WITHIN 2")
        planned = plan_pattern(
            pattern, estimate_pattern_catalog(pattern, stream)
        )
        serial = build_engines(planned).run(stream)
        chunked_run = build_engines(planned).run(
            Stream.from_iterable(iter(events), chunk_size=7)
        )
        assert [m.key() for m in chunked_run] == [m.key() for m in serial]

    def test_chunk_size_validation(self):
        with pytest.raises(ValueError):
            Stream.from_iterable(iter(()), chunk_size=0)
