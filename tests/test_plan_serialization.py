"""Tests for plan (de)serialization round trips."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError
from repro.plans import (
    OrderPlan,
    TreePlan,
    enumerate_bushy_trees,
    join,
    plan_from_dict,
    plan_to_dict,
)


class TestOrderPlanRoundTrip:
    def test_round_trip(self):
        plan = OrderPlan(("c", "a", "b"))
        assert plan_from_dict(plan_to_dict(plan)) == plan

    def test_json_compatible(self):
        plan = OrderPlan(("a", "b"))
        text = json.dumps(plan_to_dict(plan))
        assert plan_from_dict(json.loads(text)) == plan


class TestTreePlanRoundTrip:
    def test_round_trip_bushy(self):
        plan = TreePlan(join(join("a", "b"), join("c", "d")))
        assert plan_from_dict(plan_to_dict(plan)) == plan

    def test_all_small_trees_round_trip(self):
        for plan in enumerate_bushy_trees("abcd"):
            assert plan_from_dict(plan_to_dict(plan)) == plan

    def test_json_compatible(self):
        plan = TreePlan(join("a", join("b", "c")))
        text = json.dumps(plan_to_dict(plan))
        assert plan_from_dict(json.loads(text)) == plan


class TestErrors:
    def test_unknown_kind(self):
        with pytest.raises(PlanError):
            plan_from_dict({"kind": "spaghetti"})

    def test_malformed_node(self):
        with pytest.raises(PlanError):
            plan_from_dict({"kind": "tree", "root": {"left": {"leaf": "a"}}})

    def test_unserializable_object(self):
        with pytest.raises(PlanError):
            plan_to_dict(object())  # type: ignore[arg-type]


@settings(max_examples=30, deadline=None)
@given(
    variables=st.lists(
        st.sampled_from("abcdefgh"), min_size=1, max_size=8, unique=True
    )
)
def test_property_order_round_trip(variables):
    plan = OrderPlan(tuple(variables))
    assert plan_from_dict(plan_to_dict(plan)) == plan
