"""Property-based cross-engine equivalence (the core correctness claim).

Section 2.2: all n! orders track the exact same pattern; Section 2.3:
the tree engine detects the same matches as the NFA.  We generate random
patterns and random streams with hypothesis and assert that every order
plan, every bushy tree plan, and the brute-force reference oracle agree
on the exact set of matches.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines import NFAEngine, TreeEngine, reference_match_keys
from repro.events import Event, Stream
from repro.patterns import decompose, parse_pattern
from repro.plans import enumerate_bushy_trees, enumerate_orders


@st.composite
def stream_strategy(draw, types="ABC", max_events=35):
    count = draw(st.integers(min_value=5, max_value=max_events))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    events, t = [], 0.0
    for _ in range(count):
        t += rng.uniform(0.05, 0.8)
        events.append(
            Event(rng.choice(types), t, {"x": rng.randrange(3)})
        )
    return Stream(events)


PATTERNS = [
    "PATTERN SEQ(A a, B b, C c) WHERE a.x = c.x WITHIN 4",
    "PATTERN AND(A a, B b, C c) WHERE a.x < b.x WITHIN 3",
    "PATTERN SEQ(A a, B b, C c) WITHIN 2",
    "PATTERN AND(A a, B b) WHERE a.x = b.x WITHIN 6",
    "PATTERN SEQ(A a, NOT(B b), C c) WHERE b.x = a.x WITHIN 4",
    "PATTERN SEQ(A a, C c, NOT(B b)) WITHIN 3",
    "PATTERN AND(A a, NOT(B b), C c) WITHIN 3",
    # Leading NOT: the forbidden range starts at max_ts − W of the
    # *complete* match, so the check must defer to completion.
    "PATTERN SEQ(NOT(B b), A a, C c) WITHIN 4",
]


@settings(max_examples=15, deadline=None)
@given(stream=stream_strategy(), pattern_index=st.integers(0, len(PATTERNS) - 1))
def test_all_plans_agree_with_reference(stream, pattern_index):
    pattern = parse_pattern(PATTERNS[pattern_index])
    d = decompose(pattern)
    expected = reference_match_keys(d, stream)
    for order in enumerate_orders(d.positive_variables):
        got = {m.key() for m in NFAEngine(d, order).run(stream)}
        assert got == expected, f"NFA {order} disagrees"
    for tree in enumerate_bushy_trees(d.positive_variables):
        got = {m.key() for m in TreeEngine(d, tree).run(stream)}
        assert got == expected, f"Tree {tree} disagrees"


@settings(max_examples=10, deadline=None)
@given(stream=stream_strategy(max_events=25))
def test_kleene_plans_agree_with_reference(stream):
    pattern = parse_pattern(
        "PATTERN SEQ(A a, KL(B b), C c) WHERE a.x = c.x WITHIN 4"
    )
    d = decompose(pattern)
    expected = reference_match_keys(d, stream, max_kleene_size=3)
    for order in enumerate_orders(d.positive_variables):
        engine = NFAEngine(d, order, max_kleene_size=3)
        got = {m.key() for m in engine.run(stream)}
        assert got == expected, f"NFA {order} disagrees"
    for tree in enumerate_bushy_trees(d.positive_variables):
        engine = TreeEngine(d, tree, max_kleene_size=3)
        got = {m.key() for m in engine.run(stream)}
        assert got == expected, f"Tree {tree} disagrees"


@settings(max_examples=12, deadline=None)
@given(stream=stream_strategy(types="ABCD", max_events=30))
def test_four_variable_pattern_equivalence(stream):
    pattern = parse_pattern(
        "PATTERN SEQ(A a, B b, C c, D d) WHERE a.x = d.x AND b.x < c.x "
        "WITHIN 3"
    )
    d = decompose(pattern)
    expected = reference_match_keys(d, stream)
    # Sample a few orders and trees rather than all 24 + 15 for speed.
    orders = list(enumerate_orders(d.positive_variables))[::5]
    trees = list(enumerate_bushy_trees(d.positive_variables))[::4]
    for order in orders:
        got = {m.key() for m in NFAEngine(d, order).run(stream)}
        assert got == expected
    for tree in trees:
        got = {m.key() for m in TreeEngine(d, tree).run(stream)}
        assert got == expected


@settings(max_examples=10, deadline=None)
@given(stream=stream_strategy(types="AB", max_events=40))
def test_next_match_no_event_reuse_any_plan(stream):
    pattern = parse_pattern("PATTERN SEQ(A a, B b) WITHIN 4")
    d = decompose(pattern)
    for order in enumerate_orders(d.positive_variables):
        matches = NFAEngine(d, order, selection="next").run(stream)
        seqs = [
            seq
            for match in matches
            for seq in (match["a"].seq, match["b"].seq)
        ]
        assert len(seqs) == len(set(seqs))
        for match in matches:
            assert match["a"].timestamp < match["b"].timestamp
