"""Test package marker: makes ``from .conftest import ...`` resolve as
``tests.conftest`` instead of colliding with ``benchmarks/conftest.py``
on the rootdir import path."""
