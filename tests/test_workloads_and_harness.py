"""Tests for the workload generators, harness, join costs, and adaptivity."""

import pytest

from repro.adaptive import AdaptiveController, DriftDetector
from repro.bench import (
    aggregate_mean,
    compare_algorithms,
    format_series,
    format_table,
    run_algorithm,
)
from repro.cost import intermediate_sizes, left_deep_cost
from repro.errors import ReproError
from repro.events import Event, Stream
from repro.stats import StatisticsCatalog, estimate_pattern_catalog, estimate_rates
from repro.workloads import (
    CATEGORIES,
    PatternWorkloadConfig,
    StockMarketConfig,
    TrafficConfig,
    four_cameras_pattern,
    generate_pattern_set,
    generate_stock_stream,
    generate_traffic_stream,
    stock_symbols,
    symbol_rates,
)


class TestStockWorkload:
    def test_deterministic_under_seed(self):
        config = StockMarketConfig(symbols=4, duration=30.0, seed=5)
        first = generate_stock_stream(config)
        second = generate_stock_stream(config)
        assert len(first) == len(second)
        assert [e.timestamp for e in first] == [e.timestamp for e in second]

    def test_rates_match_configuration(self):
        config = StockMarketConfig(
            symbols=3, duration=400.0, rate_low=1.0, rate_high=2.0, seed=2
        )
        stream = generate_stock_stream(config)
        target = symbol_rates(config)
        measured = estimate_rates(stream)
        for name, rate in target.items():
            assert measured[name] == pytest.approx(rate, rel=0.35)

    def test_difference_attribute_consistent(self):
        stream = generate_stock_stream(
            StockMarketConfig(symbols=2, duration=50.0, seed=3)
        )
        last_price: dict = {}
        for event in stream:
            if event.type in last_price:
                expected = round(event["price"] - last_price[event.type], 4)
                assert event["difference"] == pytest.approx(
                    expected, abs=1e-6
                )
            last_price[event.type] = event["price"]

    def test_symbol_names(self):
        assert stock_symbols(3) == ["MSFT", "GOOG", "INTC"]
        assert len(stock_symbols(15)) == 15

    def test_invalid_config(self):
        with pytest.raises(ReproError):
            StockMarketConfig(symbols=0)
        with pytest.raises(ReproError):
            StockMarketConfig(rate_low=0.0)


class TestTrafficWorkload:
    def test_camera_d_is_rare(self):
        stream = generate_traffic_stream(
            TrafficConfig(vehicles=300, seed=1)
        )
        counts = stream.count_by_type()
        assert counts["CameraD"] < counts["CameraA"] * 0.35

    def test_pattern_matches_exist(self):
        stream = generate_traffic_stream(TrafficConfig(vehicles=100, seed=2))
        pattern = four_cameras_pattern(window=120.0)
        catalog = estimate_pattern_catalog(pattern, stream, samples=200)
        result = run_algorithm(pattern, stream, catalog, "GREEDY")
        assert result.matches > 0

    def test_reordered_plan_creates_fewer_pms(self):
        # The intro claim: waiting for the rare camera D first creates
        # fewer partial matches than the trivial A->B->C->D order.
        stream = generate_traffic_stream(TrafficConfig(vehicles=200, seed=3))
        pattern = four_cameras_pattern(window=90.0)
        catalog = estimate_pattern_catalog(pattern, stream, samples=200)
        trivial = run_algorithm(pattern, stream, catalog, "TRIVIAL")
        greedy = run_algorithm(pattern, stream, catalog, "GREEDY")
        assert greedy.matches == trivial.matches
        assert greedy.peak_partial_matches <= trivial.peak_partial_matches


class TestPatternWorkload:
    def test_all_categories_generate(self):
        types = stock_symbols(10)
        config = PatternWorkloadConfig(sizes=(3, 4), patterns_per_size=2)
        for category in CATEGORIES:
            patterns = generate_pattern_set(category, types, config)
            assert len(patterns) == 4
            for pattern in patterns:
                assert pattern.window == config.window

    def test_category_shapes(self):
        types = stock_symbols(10)
        config = PatternWorkloadConfig(sizes=(4,), patterns_per_size=3)
        for pattern in generate_pattern_set("negation", types, config):
            assert len(pattern.negated_variables()) == 1
        for pattern in generate_pattern_set("kleene", types, config):
            assert len(pattern.kleene_variables()) == 1
        for pattern in generate_pattern_set("conjunction", types, config):
            assert pattern.is_conjunctive
        for pattern in generate_pattern_set("disjunction", types, config):
            assert pattern.is_nested

    def test_predicate_count_roughly_half_size(self):
        types = stock_symbols(12)
        config = PatternWorkloadConfig(sizes=(6,), patterns_per_size=5)
        for pattern in generate_pattern_set("sequence", types, config):
            assert len(pattern.conditions) == 3

    def test_deterministic(self):
        types = stock_symbols(8)
        config = PatternWorkloadConfig(sizes=(3,), patterns_per_size=2, seed=7)
        first = generate_pattern_set("sequence", types, config)
        second = generate_pattern_set("sequence", types, config)
        assert [repr(p.root) for p in first] == [repr(p.root) for p in second]

    def test_unknown_category(self):
        with pytest.raises(ReproError):
            generate_pattern_set("mystery", stock_symbols(5))

    def test_size_exceeding_types(self):
        with pytest.raises(ReproError):
            generate_pattern_set(
                "sequence",
                stock_symbols(3),
                PatternWorkloadConfig(sizes=(5,)),
            )


class TestJoinCosts:
    def test_intermediate_sizes_by_hand(self):
        cardinality = {"R1": 10.0, "R2": 4.0, "R3": 2.0}

        def selectivity(a, b):
            return 0.5 if {a, b} == {"R1", "R2"} else 1.0

        sizes = intermediate_sizes(("R1", "R2", "R3"), cardinality, selectivity)
        assert sizes == [10.0, 20.0, 40.0]
        assert left_deep_cost(
            ("R1", "R2", "R3"), cardinality, selectivity
        ) == pytest.approx(70.0)

    def test_filters_fold_into_cardinality(self):
        cardinality = {"R1": 10.0, "R2": 4.0}
        sizes = intermediate_sizes(
            ("R1", "R2"), cardinality, lambda a, b: 1.0, filters={"R1": 0.5}
        )
        assert sizes == [5.0, 20.0]


class TestHarness:
    def make_inputs(self):
        stream = generate_stock_stream(
            StockMarketConfig(symbols=6, duration=40.0, seed=4)
        )
        config = PatternWorkloadConfig(
            sizes=(3,), patterns_per_size=1, window=5.0
        )
        patterns = generate_pattern_set(
            "sequence", stream.type_names(), config
        )
        catalog = estimate_pattern_catalog(patterns[0], stream, samples=200)
        return patterns, stream, catalog

    def test_run_algorithm_populates_result(self):
        patterns, stream, catalog = self.make_inputs()
        result = run_algorithm(patterns[0], stream, catalog, "GREEDY")
        assert result.events == len(stream)
        assert result.throughput > 0
        assert result.plan_cost > 0
        assert result.plan_seconds >= 0
        assert result.pattern_size == 3

    def test_execute_false_skips_run(self):
        patterns, stream, catalog = self.make_inputs()
        result = run_algorithm(
            patterns[0], stream, catalog, "DP-LD", execute=False
        )
        assert result.events == 0 and result.wall_seconds == 0
        assert result.plan_cost > 0

    def test_compare_and_aggregate(self):
        patterns, stream, catalog = self.make_inputs()
        results = compare_algorithms(
            patterns, stream, catalog, ["TRIVIAL", "GREEDY"], category="seq"
        )
        assert len(results) == 2
        means = aggregate_mean(results, "throughput", by=("algorithm",))
        assert set(means) == {("TRIVIAL",), ("GREEDY",)}

    def test_formatting(self):
        table = format_table(
            ("alg", "x"), [("GREEDY", 1.23456), ("DP", 2.0)], title="demo"
        )
        assert "GREEDY" in table and "demo" in table
        series = format_series(
            "s", {"GREEDY": {3: 1.0}}, x_values=(3, 4)
        )
        assert "-" in series  # missing cell placeholder


class TestAdaptivity:
    def test_drift_detector(self):
        detector = DriftDetector(threshold=0.5)
        assert not detector.drifted({"A": 1.0}, {"A": 1.4})
        assert detector.drifted({"A": 1.0}, {"A": 1.6})
        assert detector.drifted_keys({"A": 1.0, "B": 1.0}, {"A": 9.0}) == ["A"]

    def test_controller_reoptimizes_on_rate_shift(self):
        # Phase 1: A rare; phase 2: A becomes very frequent -> the plan
        # must be regenerated at least once.
        events = []
        t = 0.0
        for i in range(300):
            t += 0.1
            events.append(Event("A" if i % 10 == 0 else "B", t))
        for i in range(600):
            t += 0.05
            events.append(Event("A" if i % 10 != 0 else "B", t))
        stream = Stream(events)
        from repro.patterns import parse_pattern

        pattern = parse_pattern("PATTERN SEQ(A a, B b) WITHIN 2")
        catalog = StatisticsCatalog({"A": 1.0, "B": 9.0})
        controller = AdaptiveController(
            pattern,
            catalog,
            algorithm="GREEDY",
            check_interval=100,
            detector=DriftDetector(threshold=0.8),
        )
        initial_plan = controller.current_plans[0]
        matches = controller.run(stream)
        assert controller.reoptimizations >= 1
        assert controller.current_plans[0] != initial_plan
        assert matches, "controller should still detect matches"

    def test_controller_stable_without_drift(self):
        stream = generate_stock_stream(
            StockMarketConfig(symbols=3, duration=60.0, seed=6)
        )
        from repro.patterns import parse_pattern

        pattern = parse_pattern(
            "PATTERN SEQ(MSFT a, GOOG b) WITHIN 5"
        )
        catalog = estimate_pattern_catalog(pattern, stream, samples=100)
        controller = AdaptiveController(
            pattern,
            catalog,
            check_interval=50,
            detector=DriftDetector(threshold=5.0),
        )
        controller.run(stream)
        assert controller.reoptimizations == 0
