"""Indexed stores and compiled kernels change access paths, never match
sets.

Randomized-stream property tests (seeded, deterministic) asserting that
every runtime — TreeEngine, NFAEngine, and MultiQueryEngine — reports a
match sequence identical to the seed interpreted linear-store evaluation
(``indexed=False, compiled=False``) under every acceleration mode
combination: hash equi-join probes, sorted-run theta range probes, and
compiled predicate kernels, across equality-heavy, pure-theta, mixed,
Kleene, and negation patterns, under both skip-till-any and the
consuming skip-till-next strategy.  Identity is asserted on the
*ordered* list of match keys, which is stronger than set equality: the
bucketed/bisected probes must reproduce the linear scan's emission order
exactly.
"""

from __future__ import annotations

import random

import pytest

from repro.engines import NFAEngine, TreeEngine, reference_match_keys
from repro.events import Event, Stream
from repro.multiquery import Workload, plan_workload
from repro.multiquery.executor import MultiQueryEngine
from repro.patterns import decompose, parse_pattern
from repro.plans import enumerate_bushy_trees, enumerate_orders
from repro.stats import estimate_pattern_catalog

#: (name, pattern text) — one per store-sensitive pattern family.
PATTERNS = [
    ("equality", "PATTERN SEQ(A a, B b, C c) WHERE a.x = b.x AND b.x = c.x WITHIN 4"),
    ("theta", "PATTERN AND(A a, B b, C c) WHERE a.x < b.x WITHIN 3"),
    ("theta-le", "PATTERN SEQ(A a, B b, C c) WHERE a.x <= b.x AND c.x > b.x WITHIN 3"),
    ("mixed", "PATTERN SEQ(A a, B b, C c, D d) WHERE a.x = d.x AND b.x < c.x WITHIN 3"),
    ("hash+range", "PATTERN SEQ(A a, B b, C c) WHERE a.x = b.x AND a.y < b.y WITHIN 4"),
    ("kleene", "PATTERN SEQ(A a, KL(B b), C c) WHERE a.x = c.x WITHIN 4"),
    ("kleene-theta", "PATTERN SEQ(A a, KL(B b), C c) WHERE a.y < c.y AND b.x = a.x WITHIN 3"),
    ("negation", "PATTERN SEQ(A a, NOT(B b), C c) WHERE a.x = c.x AND b.x = a.x WITHIN 4"),
    ("negation-theta", "PATTERN SEQ(A a, NOT(B b), C c) WHERE a.y < c.y AND b.x = a.x WITHIN 4"),
]

#: (indexed, compiled) — every acceleration combination vs the seed.
MODES = ((True, True), (True, False), (False, True))

SEEDS = (3, 17, 51)


def rand_stream(seed: int, count: int = 60, types: str = "ABCD") -> Stream:
    rng = random.Random(seed)
    events, t = [], 0.0
    for _ in range(count):
        t += rng.uniform(0.05, 0.5)
        events.append(
            Event(
                rng.choice(types),
                t,
                {"x": rng.randrange(3), "y": round(rng.uniform(0, 1), 3)},
            )
        )
    return Stream(events)


def noisy_stream(seed: int, count: int = 60, types: str = "ABCD") -> Stream:
    """NaN values, missing attributes and mixed types in the hot attrs —
    every index corner case at once."""
    rng = random.Random(seed)
    events, t = [], 0.0
    for _ in range(count):
        t += rng.uniform(0.05, 0.5)
        attrs = {}
        if rng.random() < 0.9:
            roll = rng.random()
            attrs["x"] = (
                float("nan") if roll < 0.15
                else "s" if roll < 0.3
                else rng.randrange(3)
            )
        if rng.random() < 0.9:
            roll = rng.random()
            attrs["y"] = (
                float("nan") if roll < 0.15
                else [1] if roll < 0.25  # unhashable and unorderable
                else round(rng.uniform(0, 1), 3)
            )
        events.append(Event(rng.choice(types), t, attrs))
    return Stream(events)


def keys_of(matches) -> list:
    return [m.key() for m in matches]


@pytest.mark.parametrize("name,text", PATTERNS, ids=[n for n, _ in PATTERNS])
@pytest.mark.parametrize("seed", SEEDS)
def test_tree_and_nfa_accelerated_match_interpreted_linear(name, text, seed):
    stream = rand_stream(seed)
    d = decompose(parse_pattern(text))
    kwargs = {"max_kleene_size": 3} if name.startswith("kleene") else {}
    reference = reference_match_keys(stream=stream, decomposed=d, **kwargs)
    for tree in list(enumerate_bushy_trees(d.positive_variables))[:4]:
        baseline = TreeEngine(
            d, tree, indexed=False, compiled=False, **kwargs
        ).run(stream)
        assert set(keys_of(baseline)) == reference
        for indexed, compiled in MODES:
            accelerated = TreeEngine(
                d, tree, indexed=indexed, compiled=compiled, **kwargs
            ).run(stream)
            assert keys_of(accelerated) == keys_of(baseline), (
                f"tree/{name} diverges (indexed={indexed}, "
                f"compiled={compiled})"
            )
    for order in list(enumerate_orders(d.positive_variables))[:4]:
        baseline = NFAEngine(
            d, order, indexed=False, compiled=False, **kwargs
        ).run(stream)
        assert set(keys_of(baseline)) == reference
        for indexed, compiled in MODES:
            accelerated = NFAEngine(
                d, order, indexed=indexed, compiled=compiled, **kwargs
            ).run(stream)
            assert keys_of(accelerated) == keys_of(baseline), (
                f"nfa/{name} diverges (indexed={indexed}, "
                f"compiled={compiled})"
            )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "text",
    [
        "PATTERN SEQ(A a, B b, C c) WHERE a.x = b.x WITHIN 5",
        "PATTERN SEQ(A a, B b, C c) WHERE a.y < b.y WITHIN 5",
        "PATTERN SEQ(A a, B b, C c) WHERE a.x = b.x AND a.y < b.y WITHIN 5",
    ],
    ids=["equality", "theta", "hash+range"],
)
@pytest.mark.parametrize("selection", ["next", "strict"])
def test_consuming_strategies_accelerated_match_interpreted(
    seed, text, selection
):
    """Restrictive strategies exercise tombstone purges + first-pairing
    semantics through the bucketed and bisected probes."""
    stream = rand_stream(seed, count=80, types="ABC")
    d = decompose(parse_pattern(text))
    for tree in list(enumerate_bushy_trees(d.positive_variables))[:3]:
        baseline = TreeEngine(
            d, tree, selection=selection, indexed=False, compiled=False
        ).run(stream)
        for indexed, compiled in MODES:
            accelerated = TreeEngine(
                d, tree, selection=selection,
                indexed=indexed, compiled=compiled,
            ).run(stream)
            assert keys_of(accelerated) == keys_of(baseline)
    for order in list(enumerate_orders(d.positive_variables))[:3]:
        baseline = NFAEngine(
            d, order, selection=selection, indexed=False, compiled=False
        ).run(stream)
        for indexed, compiled in MODES:
            accelerated = NFAEngine(
                d, order, selection=selection,
                indexed=indexed, compiled=compiled,
            ).run(stream)
            assert keys_of(accelerated) == keys_of(baseline)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "text",
    [
        "PATTERN SEQ(A a, B b) WHERE a.y < b.y WITHIN 4",
        "PATTERN SEQ(A a, B b, C c) WHERE a.x = b.x AND b.y <= c.y WITHIN 3",
    ],
    ids=["theta", "mixed"],
)
def test_noisy_values_accelerated_match_interpreted(seed, text):
    """NaN, missing attributes, unorderable and unhashable values route
    through every overflow/EMPTY_RANGE corner at once."""
    stream = noisy_stream(seed, count=70)
    d = decompose(parse_pattern(text))
    for tree in list(enumerate_bushy_trees(d.positive_variables))[:3]:
        baseline = TreeEngine(
            d, tree, indexed=False, compiled=False
        ).run(stream)
        for indexed, compiled in MODES:
            accelerated = TreeEngine(
                d, tree, indexed=indexed, compiled=compiled
            ).run(stream)
            assert keys_of(accelerated) == keys_of(baseline)
    for order in list(enumerate_orders(d.positive_variables))[:3]:
        baseline = NFAEngine(
            d, order, indexed=False, compiled=False
        ).run(stream)
        for indexed, compiled in MODES:
            accelerated = NFAEngine(
                d, order, indexed=indexed, compiled=compiled
            ).run(stream)
            assert keys_of(accelerated) == keys_of(baseline)


def test_unhashable_key_values_indexed_match_linear():
    """Regression: unhashable attribute values route through the
    overflow, which is *not* bucket-guaranteed — the full predicate set
    (not the residuals) must apply to those candidates."""
    events = [
        Event("A", 0.1, {"k": [1, 2]}),
        Event("A", 0.2, {"k": [9, 9]}),
        Event("B", 0.3, {"k": [1, 2]}),
        Event("B", 0.4, {"k": 5}),
        Event("A", 0.5, {"k": 5}),
        Event("B", 0.6, {"k": [9, 9]}),
    ]
    stream = Stream(events)
    d = decompose(parse_pattern("PATTERN SEQ(A a, B b) WHERE a.k = b.k WITHIN 2"))
    for tree in enumerate_bushy_trees(d.positive_variables):
        linear = TreeEngine(d, tree, indexed=False).run(stream)
        indexed = TreeEngine(d, tree, indexed=True).run(stream)
        assert keys_of(indexed) == keys_of(linear)
    for order in enumerate_orders(d.positive_variables):
        linear = NFAEngine(d, order, indexed=False).run(stream)
        indexed = NFAEngine(d, order, indexed=True).run(stream)
        assert keys_of(indexed) == keys_of(linear)


@pytest.mark.parametrize("seed", SEEDS)
def test_multiquery_accelerated_matches_interpreted_linear(seed):
    stream = rand_stream(seed, count=70)
    workload = Workload(
        [
            "PATTERN SEQ(A a, B b, C c) WHERE a.x = b.x WITHIN 4",
            "PATTERN SEQ(A a, B b, D d) WHERE a.x = b.x AND b.x = d.x WITHIN 4",
            "PATTERN AND(A a, D d) WHERE a.x < d.x WITHIN 3",
            "PATTERN SEQ(A a, C c) WHERE a.x = c.x AND a.y < c.y WITHIN 3",
        ]
    )
    catalogs = {
        name: estimate_pattern_catalog(pattern, stream)
        for name, pattern in workload.items()
    }
    plan = plan_workload(workload, catalogs, algorithm="GREEDY")
    assert plan.report.shared_nodes > 0  # the sharing path is exercised
    baseline = MultiQueryEngine(plan, indexed=False, compiled=False).run(
        stream
    )
    for indexed, compiled in MODES:
        accelerated = MultiQueryEngine(
            plan, indexed=indexed, compiled=compiled
        ).run(stream)
        assert set(baseline) == set(accelerated)
        for query in baseline:
            assert keys_of(accelerated[query]) == keys_of(baseline[query]), (
                f"{query} diverges (indexed={indexed}, compiled={compiled})"
            )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "name,text",
    [PATTERNS[0], PATTERNS[4], PATTERNS[5]],
    ids=["equality", "hash+range", "kleene"],
)
def test_traced_runs_match_untraced(name, text, seed):
    """The tracer axis: attaching plan-DAG tracing must not change any
    runtime's match sequence under any acceleration mode — observation
    counts work, it never participates in it."""
    from repro.observe import Tracer

    stream = rand_stream(seed)
    d = decompose(parse_pattern(text))
    kwargs = {"max_kleene_size": 3} if name.startswith("kleene") else {}
    tree = next(iter(enumerate_bushy_trees(d.positive_variables)))
    order = next(iter(enumerate_orders(d.positive_variables)))
    for indexed, compiled in ((False, False),) + MODES:
        for build in (
            lambda: TreeEngine(
                d, tree, indexed=indexed, compiled=compiled, **kwargs
            ),
            lambda: NFAEngine(
                d, order, indexed=indexed, compiled=compiled, **kwargs
            ),
        ):
            baseline = build().run(stream)
            traced_engine = build()
            tracer = Tracer()
            traced_engine.set_tracer(tracer)
            traced = traced_engine.run(stream)
            assert keys_of(traced) == keys_of(baseline), (
                f"{name} diverges under tracing "
                f"(indexed={indexed}, compiled={compiled})"
            )
            assert tracer.nodes


@pytest.mark.parametrize("seed", SEEDS)
def test_traced_multiquery_matches_untraced(seed):
    from repro.observe import Tracer

    stream = rand_stream(seed, count=70)
    workload = Workload(
        [
            "PATTERN SEQ(A a, B b, C c) WHERE a.x = b.x WITHIN 4",
            "PATTERN SEQ(A a, C c) WHERE a.x = c.x AND a.y < c.y WITHIN 3",
        ]
    )
    catalogs = {
        name: estimate_pattern_catalog(pattern, stream)
        for name, pattern in workload.items()
    }
    plan = plan_workload(workload, catalogs, algorithm="GREEDY")
    for indexed, compiled in ((False, False),) + MODES:
        baseline = MultiQueryEngine(
            plan, indexed=indexed, compiled=compiled
        ).run(stream)
        traced_engine = MultiQueryEngine(
            plan, indexed=indexed, compiled=compiled
        )
        tracer = Tracer()
        traced_engine.set_tracer(tracer)
        traced = traced_engine.run(stream)
        assert set(baseline) == set(traced)
        for query in baseline:
            assert keys_of(traced[query]) == keys_of(baseline[query]), (
                f"{query} diverges under tracing "
                f"(indexed={indexed}, compiled={compiled})"
            )
        assert tracer.nodes

# -- Kleene equi-keys -------------------------------------------------------

class TestKleeneKeyValue:
    """The common-element key function behind Kleene-inclusive indexes."""

    def test_agreement_yields_common_value(self):
        from repro.engines import kleene_key_value

        binding = (ev_attrs(x=4), ev_attrs(x=4), ev_attrs(x=4))
        assert kleene_key_value(binding, "x") == 4

    def test_empty_tuple_is_vacuous_typeerror(self):
        from repro.engines import kleene_key_value

        with pytest.raises(TypeError):
            kleene_key_value((), "x")

    def test_disagreement_and_nan_are_unreachable_keyerror(self):
        from repro.engines import kleene_key_value

        with pytest.raises(KeyError):
            kleene_key_value((ev_attrs(x=1), ev_attrs(x=2)), "x")
        with pytest.raises(KeyError):
            kleene_key_value((ev_attrs(x=float("nan")),), "x")
        with pytest.raises(KeyError):
            kleene_key_value((ev_attrs(),), "x")  # missing attribute

    def test_make_key_fn_resolves_kleene_bindings(self):
        from repro.engines.stores import make_key_fn

        key_of = make_key_fn((("a", "x"), ("k", "x")), kleene={"k"})
        bindings = {"a": ev_attrs(x=7), "k": (ev_attrs(x=7), ev_attrs(x=7))}
        assert key_of(bindings) == (7, 7)


def ev_attrs(**attrs) -> Event:
    return Event("B", 1.0, attrs)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "name,text",
    [PATTERNS[5], PATTERNS[6]],
    ids=["kleene", "kleene-theta"],
)
def test_kleene_equality_predicates_engage_the_index(name, text, seed):
    """Kleene variables now key hash indexes (satellite of the codegen
    PR): the indexed run must actually probe buckets — not silently fall
    back to linear scans — while reproducing the linear emission order
    (asserted pattern-wide by the main equivalence test above)."""
    stream = rand_stream(seed)
    d = decompose(parse_pattern(text))
    tree = next(iter(enumerate_bushy_trees(d.positive_variables)))
    engine = TreeEngine(d, tree, indexed=True, max_kleene_size=3)
    baseline = TreeEngine(d, tree, indexed=False, max_kleene_size=3).run(stream)
    assert keys_of(engine.run(stream)) == keys_of(baseline)
    assert engine.metrics.index_probes > 0


# -- Batch-vs-single-event equivalence --------------------------------------

#: Chunk sizes spanning the gates: 1 (pure per-event), small runs, and
#: whole-stream gulps.
BATCH_SIZES = (1, 3, 16, 1000)

#: Metrics that must not move under batching: the batch path may shift
#: index-hit accounting (one probe serves a run) but never the logical
#: work — events seen, predicates charged, partial matches built,
#: matches emitted.
CORE_METRICS = (
    "events",
    "matches",
    "pm_created",
    "predicate_evals",
    "pm_expired",
)


def match_sig(matches) -> list:
    return [(m.key(), m.detection_ts, m.latency) for m in matches]


def core_metrics(engine) -> dict:
    summary = engine.metrics.summary()
    return {k: summary[k] for k in CORE_METRICS}


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "name,text",
    [PATTERNS[0], PATTERNS[4], PATTERNS[5], PATTERNS[8]],
    ids=["equality", "hash+range", "kleene", "negation-theta"],
)
def test_batched_runs_match_single_event(name, text, seed):
    """run_batched must reproduce run exactly — same ordered match
    signatures and same logical metric charges — for every chunk size,
    engine, acceleration mode, and kernel backend."""
    stream = rand_stream(seed)
    d = decompose(parse_pattern(text))
    kwargs = {"max_kleene_size": 3} if name.startswith("kleene") else {}
    tree = next(iter(enumerate_bushy_trees(d.positive_variables)))
    order = next(iter(enumerate_orders(d.positive_variables)))
    for indexed, compiled, codegen in (
        (True, True, True),
        (True, True, False),
        (False, True, True),
        (True, False, True),
        (False, False, False),
    ):
        for build in (
            lambda: TreeEngine(
                d, tree, indexed=indexed, compiled=compiled,
                codegen=codegen, **kwargs
            ),
            lambda: NFAEngine(
                d, order, indexed=indexed, compiled=compiled,
                codegen=codegen, **kwargs
            ),
        ):
            single = build()
            baseline = single.run(stream)
            for batch_size in BATCH_SIZES:
                batched_engine = build()
                batched = batched_engine.run_batched(
                    stream, batch_size=batch_size
                )
                label = (
                    f"{name} batch={batch_size} (indexed={indexed}, "
                    f"compiled={compiled}, codegen={codegen})"
                )
                assert match_sig(batched) == match_sig(baseline), label
                assert core_metrics(batched_engine) == core_metrics(single), label
                assert (
                    batched_engine.metrics.batches_processed
                    == -(-len(stream) // batch_size)
                ), label


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("selection", ["next", "strict"])
def test_batched_consuming_strategies_match_single_event(seed, selection):
    """Consuming strategies gate batched runs back onto the per-event
    path — the equivalence must hold regardless."""
    stream = rand_stream(seed, count=80, types="ABC")
    d = decompose(
        parse_pattern("PATTERN SEQ(A a, B b, C c) WHERE a.x = b.x WITHIN 5")
    )
    tree = next(iter(enumerate_bushy_trees(d.positive_variables)))
    order = next(iter(enumerate_orders(d.positive_variables)))
    for build in (
        lambda: TreeEngine(d, tree, selection=selection, indexed=True),
        lambda: NFAEngine(d, order, selection=selection, indexed=True),
    ):
        single = build()
        baseline = single.run(stream)
        for batch_size in (3, 64):
            batched_engine = build()
            batched = batched_engine.run_batched(stream, batch_size=batch_size)
            assert match_sig(batched) == match_sig(baseline)
            assert core_metrics(batched_engine) == core_metrics(single)


@pytest.mark.parametrize("seed", SEEDS)
def test_batched_noisy_values_match_single_event(seed):
    """NaN, missing, unhashable and unorderable attributes must route
    through probe_batch's degradation paths without diverging."""
    stream = noisy_stream(seed, count=70)
    d = decompose(
        parse_pattern(
            "PATTERN SEQ(A a, B b, C c) WHERE a.x = b.x AND b.y <= c.y WITHIN 3"
        )
    )
    tree = next(iter(enumerate_bushy_trees(d.positive_variables)))
    order = next(iter(enumerate_orders(d.positive_variables)))
    for build in (
        lambda: TreeEngine(d, tree, indexed=True, compiled=True),
        lambda: NFAEngine(d, order, indexed=True, compiled=True),
    ):
        single = build()
        baseline = single.run(stream)
        for batch_size in (5, 37):
            batched_engine = build()
            batched = batched_engine.run_batched(stream, batch_size=batch_size)
            assert match_sig(batched) == match_sig(baseline)
            assert core_metrics(batched_engine) == core_metrics(single)


@pytest.mark.parametrize("seed", SEEDS)
def test_batched_multiquery_matches_single_event(seed):
    stream = rand_stream(seed, count=70)
    workload = Workload(
        [
            "PATTERN SEQ(A a, B b, C c) WHERE a.x = b.x WITHIN 4",
            "PATTERN SEQ(A a, B b, D d) WHERE a.x = b.x AND b.x = d.x WITHIN 4",
            "PATTERN SEQ(A a, C c) WHERE a.x = c.x AND a.y < c.y WITHIN 3",
        ]
    )
    catalogs = {
        name: estimate_pattern_catalog(pattern, stream)
        for name, pattern in workload.items()
    }
    plan = plan_workload(workload, catalogs, algorithm="GREEDY")
    for codegen in (True, False):
        single = MultiQueryEngine(plan, indexed=True, codegen=codegen)
        baseline = single.run(stream)
        for batch_size in (1, 4, 50):
            batched_engine = MultiQueryEngine(
                plan, indexed=True, codegen=codegen
            )
            batched = batched_engine.run_batched(stream, batch_size=batch_size)
            assert set(batched) == set(baseline)
            for query in baseline:
                assert match_sig(batched[query]) == match_sig(baseline[query]), (
                    f"{query} diverges (batch={batch_size}, codegen={codegen})"
                )
            assert core_metrics(batched_engine) == core_metrics(single)


@pytest.mark.parametrize("seed", SEEDS)
def test_batched_traced_runs_fall_back_identically(seed):
    """A tracer forces the per-event path: batched+traced runs must
    reproduce the traced observation sequence exactly."""
    from repro.observe import Tracer

    stream = rand_stream(seed)
    d = decompose(
        parse_pattern("PATTERN SEQ(A a, B b, C c) WHERE a.x = b.x WITHIN 4")
    )
    tree = next(iter(enumerate_bushy_trees(d.positive_variables)))
    single = TreeEngine(d, tree, indexed=True, compiled=True)
    tracer_a = Tracer()
    single.set_tracer(tracer_a)
    baseline = single.run(stream)
    batched_engine = TreeEngine(d, tree, indexed=True, compiled=True)
    tracer_b = Tracer()
    batched_engine.set_tracer(tracer_b)
    batched = batched_engine.run_batched(stream, batch_size=16)
    assert match_sig(batched) == match_sig(baseline)
    assert [
        (n.node_id, n.kind, n.events, n.created, n.probed, n.matches)
        for n in tracer_a.nodes
    ] == [
        (n.node_id, n.kind, n.events, n.created, n.probed, n.matches)
        for n in tracer_b.nodes
    ]
