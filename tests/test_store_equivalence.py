"""Indexed stores change access paths, never match sets.

Randomized-stream property tests (seeded, deterministic) asserting that
every runtime with the new indexed stores — TreeEngine, NFAEngine, and
MultiQueryEngine — reports a match sequence identical to the seed
linear-store evaluation (``indexed=False``), across equality-heavy,
pure-theta, Kleene, and negation patterns, under both skip-till-any and
the consuming skip-till-next strategy.  Identity is asserted on the
*ordered* list of match keys, which is stronger than set equality: the
bucketed probes must reproduce the linear scan's emission order exactly.
"""

from __future__ import annotations

import random

import pytest

from repro.engines import NFAEngine, TreeEngine, reference_match_keys
from repro.events import Event, Stream
from repro.multiquery import Workload, plan_workload
from repro.multiquery.executor import MultiQueryEngine
from repro.patterns import decompose, parse_pattern
from repro.plans import enumerate_bushy_trees, enumerate_orders
from repro.stats import estimate_pattern_catalog

#: (name, pattern text) — one per store-sensitive pattern family.
PATTERNS = [
    ("equality", "PATTERN SEQ(A a, B b, C c) WHERE a.x = b.x AND b.x = c.x WITHIN 4"),
    ("theta", "PATTERN AND(A a, B b, C c) WHERE a.x < b.x WITHIN 3"),
    ("mixed", "PATTERN SEQ(A a, B b, C c, D d) WHERE a.x = d.x AND b.x < c.x WITHIN 3"),
    ("kleene", "PATTERN SEQ(A a, KL(B b), C c) WHERE a.x = c.x WITHIN 4"),
    ("negation", "PATTERN SEQ(A a, NOT(B b), C c) WHERE a.x = c.x AND b.x = a.x WITHIN 4"),
]

SEEDS = (3, 17, 51)


def rand_stream(seed: int, count: int = 60, types: str = "ABCD") -> Stream:
    rng = random.Random(seed)
    events, t = [], 0.0
    for _ in range(count):
        t += rng.uniform(0.05, 0.5)
        events.append(Event(rng.choice(types), t, {"x": rng.randrange(3)}))
    return Stream(events)


def keys_of(matches) -> list:
    return [m.key() for m in matches]


@pytest.mark.parametrize("name,text", PATTERNS, ids=[n for n, _ in PATTERNS])
@pytest.mark.parametrize("seed", SEEDS)
def test_tree_and_nfa_indexed_match_linear(name, text, seed):
    stream = rand_stream(seed)
    d = decompose(parse_pattern(text))
    kwargs = {"max_kleene_size": 3} if name == "kleene" else {}
    reference = reference_match_keys(stream=stream, decomposed=d, **kwargs)
    for tree in list(enumerate_bushy_trees(d.positive_variables))[:4]:
        linear = TreeEngine(d, tree, indexed=False, **kwargs).run(stream)
        indexed = TreeEngine(d, tree, indexed=True, **kwargs).run(stream)
        assert keys_of(indexed) == keys_of(linear)
        assert set(keys_of(indexed)) == reference
    for order in list(enumerate_orders(d.positive_variables))[:4]:
        linear = NFAEngine(d, order, indexed=False, **kwargs).run(stream)
        indexed = NFAEngine(d, order, indexed=True, **kwargs).run(stream)
        assert keys_of(indexed) == keys_of(linear)
        assert set(keys_of(indexed)) == reference


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("selection", ["next", "strict"])
def test_consuming_strategies_indexed_match_linear(seed, selection):
    """Restrictive strategies exercise tombstone purges + first-pairing
    semantics through the bucketed probes."""
    stream = rand_stream(seed, count=80, types="ABC")
    d = decompose(
        parse_pattern("PATTERN SEQ(A a, B b, C c) WHERE a.x = b.x WITHIN 5")
    )
    for tree in list(enumerate_bushy_trees(d.positive_variables))[:3]:
        linear = TreeEngine(d, tree, selection=selection, indexed=False)
        indexed = TreeEngine(d, tree, selection=selection, indexed=True)
        assert keys_of(indexed.run(stream)) == keys_of(linear.run(stream))
    for order in list(enumerate_orders(d.positive_variables))[:3]:
        linear = NFAEngine(d, order, selection=selection, indexed=False)
        indexed = NFAEngine(d, order, selection=selection, indexed=True)
        assert keys_of(indexed.run(stream)) == keys_of(linear.run(stream))


def test_unhashable_key_values_indexed_match_linear():
    """Regression: unhashable attribute values route through the
    overflow, which is *not* bucket-guaranteed — the full predicate set
    (not the residuals) must apply to those candidates."""
    events = [
        Event("A", 0.1, {"k": [1, 2]}),
        Event("A", 0.2, {"k": [9, 9]}),
        Event("B", 0.3, {"k": [1, 2]}),
        Event("B", 0.4, {"k": 5}),
        Event("A", 0.5, {"k": 5}),
        Event("B", 0.6, {"k": [9, 9]}),
    ]
    stream = Stream(events)
    d = decompose(parse_pattern("PATTERN SEQ(A a, B b) WHERE a.k = b.k WITHIN 2"))
    for tree in enumerate_bushy_trees(d.positive_variables):
        linear = TreeEngine(d, tree, indexed=False).run(stream)
        indexed = TreeEngine(d, tree, indexed=True).run(stream)
        assert keys_of(indexed) == keys_of(linear)
    for order in enumerate_orders(d.positive_variables):
        linear = NFAEngine(d, order, indexed=False).run(stream)
        indexed = NFAEngine(d, order, indexed=True).run(stream)
        assert keys_of(indexed) == keys_of(linear)


@pytest.mark.parametrize("seed", SEEDS)
def test_multiquery_indexed_matches_linear(seed):
    stream = rand_stream(seed, count=70)
    workload = Workload(
        [
            "PATTERN SEQ(A a, B b, C c) WHERE a.x = b.x WITHIN 4",
            "PATTERN SEQ(A a, B b, D d) WHERE a.x = b.x AND b.x = d.x WITHIN 4",
            "PATTERN AND(A a, D d) WHERE a.x < d.x WITHIN 3",
        ]
    )
    catalogs = {
        name: estimate_pattern_catalog(pattern, stream)
        for name, pattern in workload.items()
    }
    plan = plan_workload(workload, catalogs, algorithm="GREEDY")
    assert plan.report.shared_nodes > 0  # the sharing path is exercised
    linear = MultiQueryEngine(plan, indexed=False).run(stream)
    indexed = MultiQueryEngine(plan, indexed=True).run(stream)
    assert set(linear) == set(indexed)
    for query in linear:
        assert keys_of(indexed[query]) == keys_of(linear[query])
