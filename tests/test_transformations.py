"""Tests for the Section-5 pattern transformations."""

import math

import pytest

from repro.errors import PatternError
from repro.events import Event, Stream
from repro.patterns import (
    TimestampOrder,
    add_contiguity_predicates,
    decompose,
    kleene_planning_rate,
    nested_to_dnf,
    parse_pattern,
    sequence_to_conjunction,
    with_partition_serials,
)


class TestSequenceToConjunction:
    def test_theorem3_rewrite(self):
        p = parse_pattern("PATTERN SEQ(A a, B b, C c) WHERE a.x = c.x WITHIN 5")
        c = sequence_to_conjunction(p)
        assert c.is_conjunctive
        orders = [
            pred for pred in c.conditions if isinstance(pred, TimestampOrder)
        ]
        assert len(orders) == 2  # a<b, b<c
        assert len(c.conditions) == 3  # original predicate kept
        assert c.window == p.window

    def test_skips_negated_positions(self):
        p = parse_pattern("PATTERN SEQ(A a, NOT(B b), C c) WITHIN 5")
        c = sequence_to_conjunction(p)
        orders = [
            pred for pred in c.conditions if isinstance(pred, TimestampOrder)
        ]
        # ordering is between the positives a and c only
        assert len(orders) == 1
        assert set(orders[0].variables) == {"a", "c"}

    def test_rejects_non_sequence(self):
        with pytest.raises(PatternError):
            sequence_to_conjunction(
                parse_pattern("PATTERN AND(A a, B b) WITHIN 5")
            )


class TestNestedToDnf:
    def test_simple_pattern_unchanged(self):
        p = parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5")
        assert nested_to_dnf(p) == [p]

    def test_and_over_or(self):
        p = parse_pattern("PATTERN AND(A a, OR(B b, C c)) WITHIN 5")
        parts = nested_to_dnf(p)
        assert len(parts) == 2
        names = [sorted(x.variable_names()) for x in parts]
        assert ["a", "b"] in names and ["a", "c"] in names
        assert all(part.is_simple for part in parts)

    def test_or_of_sequences_keeps_seq_roots(self):
        p = parse_pattern(
            "PATTERN OR(SEQ(A a, B b), SEQ(C c, D d)) WITHIN 5"
        )
        parts = nested_to_dnf(p)
        assert len(parts) == 2
        assert all(part.is_sequence for part in parts)

    def test_conditions_distributed(self):
        p = parse_pattern(
            "PATTERN AND(A a, OR(B b, C c)) WHERE a.x < b.x AND a.x < c.x "
            "WITHIN 5"
        )
        parts = nested_to_dnf(p)
        for part in parts:
            for predicate in part.conditions:
                assert set(predicate.variables) <= set(part.variable_names())

    def test_seq_of_and_flattens_with_ordering(self):
        p = parse_pattern("PATTERN SEQ(A a, AND(B b, C c), D d) WITHIN 5")
        parts = nested_to_dnf(p)
        assert len(parts) == 1
        part = parts[0]
        assert part.is_conjunctive
        orders = [
            pred
            for pred in part.conditions
            if isinstance(pred, TimestampOrder)
        ]
        # a<b, a<c, b<d, c<d
        assert len(orders) == 4

    def test_nested_or_expansion_count(self):
        p = parse_pattern(
            "PATTERN AND(OR(A a, B b), OR(C c, D d)) WITHIN 5"
        )
        assert len(nested_to_dnf(p)) == 4


class TestDecompose:
    def test_sequence_ordering_predicates(self):
        p = parse_pattern("PATTERN SEQ(A a, B b, C c) WITHIN 5")
        d = decompose(p)
        assert d.positive_variables == ("a", "b", "c")
        orders = [
            pred for pred in d.conditions if isinstance(pred, TimestampOrder)
        ]
        assert len(orders) == 2

    def test_negation_bounds_internal(self):
        p = parse_pattern("PATTERN SEQ(A a, NOT(B b), C c) WITHIN 5")
        d = decompose(p)
        (spec,) = d.negations
        assert spec.preceding == ("a",)
        assert spec.following == ("c",)
        assert spec.bounded

    def test_negation_bounds_leading_and_trailing(self):
        p = parse_pattern("PATTERN SEQ(NOT(B b), A a, NOT(C c)) WITHIN 5")
        d = decompose(p)
        lead = next(s for s in d.negations if s.variable == "b")
        trail = next(s for s in d.negations if s.variable == "c")
        assert lead.preceding == () and lead.following == ("a",)
        assert trail.preceding == ("a",) and trail.following == ()

    def test_and_negation_unbounded(self):
        p = parse_pattern("PATTERN AND(A a, NOT(B b), C c) WITHIN 5")
        d = decompose(p)
        (spec,) = d.negations
        assert not spec.bounded

    def test_negation_predicates_separated(self):
        p = parse_pattern(
            "PATTERN SEQ(A a, NOT(B b), C c) WHERE a.x = b.x AND a.x = c.x "
            "WITHIN 5"
        )
        d = decompose(p)
        between = d.conditions.between("a", "c")
        value_preds = [
            pred for pred in between if not isinstance(pred, TimestampOrder)
        ]
        order_preds = [
            pred for pred in between if isinstance(pred, TimestampOrder)
        ]
        assert len(value_preds) == 1  # a.x = c.x stays with the positives
        assert len(order_preds) == 1  # a before c (b is negated)
        assert len(d.negation_conditions) == 1  # a.x = b.x moves out

    def test_temporal_last_variable(self):
        seq = decompose(parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5"))
        assert seq.temporal_last_variable() == "b"
        conj = decompose(parse_pattern("PATTERN AND(A a, B b) WITHIN 5"))
        assert conj.temporal_last_variable() is None

    def test_nested_rejected(self):
        with pytest.raises(PatternError):
            decompose(parse_pattern("PATTERN AND(A a, OR(B b, C c)) WITHIN 5"))


class TestKleenePlanningRate:
    def test_paper_example(self):
        # Section 5.2: r=5, W=10 -> 2^50 subsets; formula (2^50 - 1) / 10.
        value = kleene_planning_rate(5.0, 10.0)
        assert value == pytest.approx((2.0**50 - 1.0) / 10.0)

    def test_small_example(self):
        # 0.1 ev/s over 20 s -> 2 events -> 3 non-empty subsets / 20 s.
        assert kleene_planning_rate(0.1, 20.0) == pytest.approx(0.15)

    def test_cap_applies(self):
        assert kleene_planning_rate(1000.0, 1000.0) == 1e30

    def test_zero_rate(self):
        assert kleene_planning_rate(0.0, 10.0) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(PatternError):
            kleene_planning_rate(-1.0, 10.0)
        with pytest.raises(PatternError):
            kleene_planning_rate(1.0, 0.0)

    def test_monotone_in_rate(self):
        values = [kleene_planning_rate(r, 5.0) for r in (0.1, 0.5, 1.0, 2.0)]
        assert values == sorted(values)
        assert math.isfinite(values[-1])


class TestContiguity:
    def test_adjacency_predicates_added(self):
        p = parse_pattern("PATTERN SEQ(A a, B b, C c) WITHIN 5")
        strict = add_contiguity_predicates(p)
        assert len(strict.conditions) == 2

    def test_rejects_conjunction(self):
        with pytest.raises(PatternError):
            add_contiguity_predicates(
                parse_pattern("PATTERN AND(A a, B b) WITHIN 5")
            )

    def test_partition_serials(self):
        stream = Stream(
            [
                Event("A", 1.0, {"k": 1}),
                Event("A", 2.0, {"k": 2}),
                Event("A", 3.0, {"k": 1}),
            ]
        )
        tagged = with_partition_serials(stream, key=lambda e: str(e["k"]))
        assert [e.partition for e in tagged] == ["1", "2", "1"]
        assert [e["pseq"] for e in tagged] == [0, 0, 1]
