"""Property tests for the paper's theorems.

* Theorem 1: ``Cost_ord`` (CEP) equals ``Cost_LDJ`` (join) under the
  reduction ``|R_i| = W·r_i``, ``f_ij = sel_ij`` — for *every* order.
* Theorem 2: ``Cost_tree`` equals ``Cost_BJ`` for every bushy tree.
* Theorem 3: a SEQ pattern and its AND+timestamp-predicates rewrite
  produce identical match sets on real streams.
* Theorems 5/6 (Appendix A): the order-based cost functions have the
  ASI property for their rank functions.
* The JQPG ⊆ CPG direction: executing the reduced conjunctive pattern
  over the reduced stream computes exactly the original join.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost import (
    ThroughputCostModel,
    bushy_cost,
    left_deep_cost,
)
from repro.cost.asi import chain_cost, rank, verify_asi_exchange
from repro.engines import NFAEngine, reference_match_keys
from repro.join import (
    JoinPredicate,
    JoinQuery,
    Relation,
    execute_plan,
    join_query_to_stream,
    pattern_to_join_query,
)
from repro.patterns import decompose, parse_pattern, sequence_to_conjunction
from repro.plans import OrderPlan, enumerate_bushy_trees, enumerate_orders
from repro.stats import PatternStatistics

MODEL = ThroughputCostModel()


@st.composite
def statistics_strategy(draw, n_vars=4, window_max=10.0):
    names = tuple("abcdef"[:n_vars])
    rates = {
        name: draw(
            st.floats(min_value=0.1, max_value=20.0, allow_nan=False)
        )
        for name in names
    }
    window = draw(st.floats(min_value=0.5, max_value=window_max))
    selectivities = {}
    for i, first in enumerate(names):
        for second in names[i + 1:]:
            if draw(st.booleans()):
                selectivities[frozenset((first, second))] = draw(
                    st.floats(min_value=0.01, max_value=1.0)
                )
    return PatternStatistics(names, window, rates, selectivities)


@settings(max_examples=60, deadline=None)
@given(stats=statistics_strategy())
def test_theorem1_cost_equality_all_orders(stats):
    cardinality = {
        v: stats.window * stats.rate(v) for v in stats.variables
    }
    for order in enumerate_orders(stats.variables):
        cep_cost = MODEL.order_cost(order.variables, stats)
        join_cost = left_deep_cost(
            order.variables, cardinality, stats.selectivity
        )
        assert cep_cost == pytest.approx(join_cost, rel=1e-9)


@settings(max_examples=40, deadline=None)
@given(stats=statistics_strategy())
def test_theorem2_cost_equality_all_trees(stats):
    cardinality = {
        v: stats.window * stats.rate(v) for v in stats.variables
    }
    for tree in enumerate_bushy_trees(stats.variables):
        cep_cost = MODEL.tree_cost(tree, stats)
        join_cost = bushy_cost(tree, cardinality, stats.selectivity)
        assert cep_cost == pytest.approx(join_cost, rel=1e-9)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), count=st.integers(10, 40))
def test_theorem3_seq_equals_and_with_order_predicates(seed, count):
    from .conftest import make_stream

    stream = make_stream(seed, count=count)
    seq_pattern = parse_pattern(
        "PATTERN SEQ(A a, B b, C c) WHERE a.x = c.x WITHIN 4"
    )
    and_pattern = sequence_to_conjunction(seq_pattern)
    d_seq = decompose(seq_pattern)
    d_and = decompose(and_pattern)
    assert reference_match_keys(d_seq, stream) == reference_match_keys(
        d_and, stream
    )
    # Also on a live engine.
    seq_matches = {
        m.key()
        for m in NFAEngine(d_seq, OrderPlan(d_seq.positive_variables)).run(
            stream
        )
    }
    and_matches = {
        m.key()
        for m in NFAEngine(d_and, OrderPlan(d_and.positive_variables)).run(
            stream
        )
    }
    assert seq_matches == and_matches


@settings(max_examples=80, deadline=None)
@given(
    weights=st.lists(
        st.floats(min_value=0.05, max_value=30.0), min_size=2, max_size=8
    ),
    split=st.data(),
)
def test_theorem5_asi_property_of_chain_cost(weights, split):
    """Random adjacent-subsequence exchanges obey the rank criterion."""
    if len(weights) < 2:
        return
    boundaries = sorted(
        split.draw(
            st.lists(
                st.integers(0, len(weights)), min_size=3, max_size=3
            )
        )
    )
    lo, mid, hi = boundaries
    prefix, seq_u, seq_v = (
        weights[:lo],
        weights[lo:mid],
        weights[mid:hi],
    )
    suffix = weights[hi:]
    if not seq_u or not seq_v:
        return
    assert verify_asi_exchange(prefix, seq_u, seq_v, suffix)


def test_rank_composition_law():
    # C(s1 s2) = C(s1) + T(s1) C(s2) backs the rank definition.
    s1, s2 = [2.0, 3.0], [0.5, 4.0]
    assert chain_cost(s1 + s2) == pytest.approx(
        chain_cost(s1) + 2.0 * 3.0 * chain_cost(s2)
    )
    assert rank([1.0]) == pytest.approx(0.0)  # weight 1 -> rank 0


class TestJoinReductions:
    def make_query(self, seed=0):
        rng = random.Random(seed)
        relations = [
            Relation.random_integers(
                name, rng.randint(4, 10), ("v",), domain=4, rng=rng
            )
            for name in ("R1", "R2", "R3")
        ]
        predicates = [
            JoinPredicate(
                "R1", "R2", 0.25, fn=lambda a, b: a["v"] == b["v"]
            ),
            JoinPredicate(
                "R2", "R3", 0.5, fn=lambda a, b: a["v"] <= b["v"]
            ),
        ]
        return JoinQuery(relations, predicates)

    @pytest.mark.parametrize("seed", range(5))
    def test_join_result_plan_independent(self, seed):
        query = self.make_query(seed)
        results = [
            execute_plan(query, order).result_keys()
            for order in enumerate_orders(query.relation_names)
        ]
        assert all(r == results[0] for r in results)

    @pytest.mark.parametrize("seed", range(5))
    def test_cep_engine_computes_the_join(self, seed):
        query = self.make_query(seed)
        expected = execute_plan(
            query, OrderPlan(query.relation_names)
        ).cardinality
        pattern, stream, catalog = join_query_to_stream(query)
        d = decompose(pattern)
        stats = PatternStatistics.for_planning(d, catalog)
        # Any plan computes the join; use the GREEDY one for variety.
        from repro.optimizers import GreedyOrder

        plan = GreedyOrder().generate(d, stats, MODEL)
        matches = NFAEngine(d, plan).run(stream)
        assert len(matches) == expected

    def test_pattern_to_join_query_cardinalities(self):
        pattern = parse_pattern(
            "PATTERN AND(A a, B b) WHERE a.x = b.x WITHIN 10"
        )
        d = decompose(pattern)
        stats = PatternStatistics(
            ("a", "b"), 10.0, {"a": 2.0, "b": 0.5},
            {frozenset(("a", "b")): 0.25},
        )
        query = pattern_to_join_query(d, stats)
        assert query.cardinalities() == {"a": 20.0, "b": 5.0}
        assert query.pair_selectivity("a", "b") == 0.25

    def test_pattern_to_join_query_rejects_impure(self):
        from repro.errors import ReductionError

        pattern = parse_pattern("PATTERN SEQ(A a, KL(B b)) WITHIN 5")
        d = decompose(pattern)
        stats = PatternStatistics(("a", "b"), 5.0, {"a": 1.0, "b": 1.0}, {})
        with pytest.raises(ReductionError):
            pattern_to_join_query(d, stats)

    def test_round_trip_preserves_planning_costs(self):
        # pattern -> join query -> planning stats should match the
        # original stats (Theorem 1 both ways).
        pattern = parse_pattern(
            "PATTERN AND(A a, B b, C c) WHERE a.x = b.x WITHIN 4"
        )
        d = decompose(pattern)
        stats = PatternStatistics(
            ("a", "b", "c"),
            4.0,
            {"a": 2.0, "b": 3.0, "c": 1.5},
            {frozenset(("a", "b")): 0.2},
        )
        query = pattern_to_join_query(d, stats)
        join_stats = query.planning_statistics()
        for order in enumerate_orders(("a", "b", "c")):
            assert MODEL.order_cost(order.variables, stats) == pytest.approx(
                MODEL.order_cost(order.variables, join_stats)
            )
