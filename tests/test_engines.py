"""Behavioural tests for the NFA and tree engines."""

import pytest

from repro.engines import (
    Match,
    NFAEngine,
    OutputProfiler,
    TreeEngine,
    reference_match_keys,
)
from repro.errors import EngineError
from repro.events import Event, Stream
from repro.patterns import decompose, parse_pattern
from repro.plans import OrderPlan, TreePlan, join

from .conftest import make_stream


def run_nfa(pattern_text, stream, order=None, **kwargs):
    d = decompose(parse_pattern(pattern_text))
    plan = OrderPlan(order) if order else OrderPlan(d.positive_variables)
    engine = NFAEngine(d, plan, **kwargs)
    return engine, engine.run(stream)


class TestNFABasics:
    def test_simple_sequence_detection(self):
        stream = Stream(
            [
                Event("A", 1.0, {"x": 1}),
                Event("B", 2.0, {"x": 1}),
                Event("A", 3.0, {"x": 2}),
                Event("B", 4.0, {"x": 2}),
            ]
        )
        engine, matches = run_nfa(
            "PATTERN SEQ(A a, B b) WHERE a.x = b.x WITHIN 5", stream
        )
        assert len(matches) == 2
        assert all(m["a"].timestamp < m["b"].timestamp for m in matches)

    def test_window_excludes_distant_pairs(self):
        stream = Stream([Event("A", 0.0), Event("B", 10.0)])
        _, matches = run_nfa("PATTERN SEQ(A a, B b) WITHIN 5", stream)
        assert matches == []

    def test_sequence_order_enforced_under_reordered_plan(self):
        stream = Stream([Event("B", 1.0), Event("A", 2.0), Event("B", 3.0)])
        _, matches = run_nfa(
            "PATTERN SEQ(A a, B b) WITHIN 5", stream, order=("b", "a")
        )
        assert len(matches) == 1
        assert matches[0]["b"].timestamp == 3.0

    def test_plan_must_cover_positives(self):
        d = decompose(parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5"))
        from repro.errors import PlanError

        with pytest.raises(PlanError):
            NFAEngine(d, OrderPlan(("a",)))

    def test_single_variable_pattern(self):
        stream = Stream([Event("A", 1.0, {"x": 5}), Event("A", 2.0, {"x": -5})])
        _, matches = run_nfa(
            "PATTERN SEQ(A a, B b) WHERE a.x > 0 WITHIN 5",
            Stream([]),
        )
        assert matches == []
        d = decompose(
            parse_pattern("PATTERN AND(A a, A2 dummy) WHERE a.x > 0 WITHIN 5")
        )

    def test_unary_filter_applied(self):
        stream = Stream(
            [Event("A", 1.0, {"x": -1}), Event("B", 2.0, {"x": 0})]
        )
        _, matches = run_nfa(
            "PATTERN SEQ(A a, B b) WHERE a.x > 0 WITHIN 5", stream
        )
        assert matches == []

    def test_metrics_populated(self):
        stream = make_stream(1, count=50, types="AB")
        engine, matches = run_nfa("PATTERN SEQ(A a, B b) WITHIN 3", stream)
        metrics = engine.metrics
        assert metrics.events_processed == 50
        assert metrics.matches_emitted == len(matches)
        assert metrics.peak_partial_matches > 0
        assert metrics.partial_matches_created >= len(matches)

    def test_latency_zero_when_plan_order_is_temporal(self):
        stream = Stream([Event("A", 1.0), Event("B", 2.0)])
        _, matches = run_nfa("PATTERN SEQ(A a, B b) WITHIN 5", stream)
        assert matches[0].latency == 0.0

    def test_latency_positive_for_out_of_order_plan(self):
        # Plan waits for A-after-B bookkeeping: B arrives last in pattern
        # time but first in plan order; the match completes when the later
        # buffered pairing happens.
        stream = Stream([Event("A", 1.0), Event("B", 2.0), Event("A", 3.0)])
        _, matches = run_nfa(
            "PATTERN SEQ(A a, B b) WITHIN 5", stream, order=("b", "a")
        )
        # match (a@1, b@2) is only detected when a@3 arrives? No: pairing
        # happens when the b instance scans the buffer at creation, i.e.
        # at t=2. Latency stays 0 for that match.
        for match in matches:
            assert match.latency >= 0.0


class TestTreeBasics:
    def test_bushy_plan_detection(self):
        d = decompose(
            parse_pattern(
                "PATTERN SEQ(A a, B b, C c, D d) WHERE a.x = d.x WITHIN 10"
            )
        )
        plan = TreePlan(join(join("a", "d"), join("b", "c")))
        stream = make_stream(5, count=80, types="ABCD")
        engine = TreeEngine(d, plan)
        matches = engine.run(stream)
        expected = reference_match_keys(d, stream)
        assert {m.key() for m in matches} == expected

    def test_tree_counts_leaf_instances_as_pms(self):
        d = decompose(parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5"))
        stream = Stream([Event("A", 1.0)])
        engine = TreeEngine(d, TreePlan(join("a", "b")))
        engine.run(stream)
        assert engine.metrics.peak_partial_matches == 1

    def test_invalid_plan_rejected(self):
        d = decompose(parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5"))
        from repro.errors import PlanError

        with pytest.raises(PlanError):
            TreeEngine(d, TreePlan(join("a", "z")))


class TestNegationBehaviour:
    def test_internal_negation_blocks(self):
        stream = Stream(
            [Event("A", 1.0), Event("B", 2.0), Event("C", 3.0)]
        )
        _, matches = run_nfa(
            "PATTERN SEQ(A a, NOT(B b), C c) WITHIN 5", stream
        )
        assert matches == []

    def test_internal_negation_outside_range_ok(self):
        stream = Stream(
            [Event("B", 0.5), Event("A", 1.0), Event("C", 3.0), Event("B", 4.0)]
        )
        _, matches = run_nfa(
            "PATTERN SEQ(A a, NOT(B b), C c) WITHIN 5", stream
        )
        assert len(matches) == 1

    def test_trailing_negation_blocks_until_window(self):
        stream = Stream(
            [Event("A", 1.0), Event("C", 2.0), Event("B", 3.0)]
        )
        _, matches = run_nfa(
            "PATTERN SEQ(A a, C c, NOT(B b)) WITHIN 5", stream
        )
        assert matches == []

    def test_trailing_negation_releases_after_window(self):
        stream = Stream(
            [Event("A", 1.0), Event("C", 2.0), Event("D", 99.0)]
        )
        _, matches = run_nfa(
            "PATTERN SEQ(A a, C c, NOT(B b)) WITHIN 5", stream
        )
        assert len(matches) == 1
        # Released when stream time passed the negation deadline (1+5).
        assert matches[0].detection_ts == pytest.approx(6.0)

    def test_trailing_negation_released_at_finalize(self):
        stream = Stream([Event("A", 1.0), Event("C", 2.0)])
        engine, matches = run_nfa(
            "PATTERN SEQ(A a, C c, NOT(B b)) WITHIN 5", stream
        )
        assert len(matches) == 1

    def test_negation_with_predicate_only_blocks_matching(self):
        stream = Stream(
            [
                Event("A", 1.0, {"x": 1}),
                Event("B", 2.0, {"x": 2}),  # x differs -> no veto
                Event("C", 3.0, {"x": 1}),
            ]
        )
        _, matches = run_nfa(
            "PATTERN SEQ(A a, NOT(B b), C c) WHERE b.x = a.x WITHIN 5",
            stream,
        )
        assert len(matches) == 1


class TestKleeneBehaviour:
    def test_subsets_generated(self):
        stream = Stream(
            [Event("A", 1.0), Event("B", 2.0), Event("B", 3.0), Event("C", 4.0)]
        )
        _, matches = run_nfa(
            "PATTERN SEQ(A a, KL(B b), C c) WITHIN 10", stream
        )
        # Subsets of {b1, b2}: {b1}, {b2}, {b1,b2} -> 3 matches.
        assert len(matches) == 3
        sizes = sorted(len(m["b"]) for m in matches)
        assert sizes == [1, 1, 2]

    def test_max_kleene_size_caps_tuples(self):
        stream = Stream(
            [Event("A", 0.0)]
            + [Event("B", 1.0 + i * 0.1) for i in range(5)]
            + [Event("C", 2.0)]
        )
        _, matches = run_nfa(
            "PATTERN SEQ(A a, KL(B b), C c) WITHIN 10",
            stream,
            max_kleene_size=2,
        )
        assert all(len(m["b"]) <= 2 for m in matches)
        # 5 singletons + C(5,2)=10 pairs
        assert len(matches) == 15

    def test_kleene_temporal_constraints(self):
        stream = Stream(
            [Event("B", 0.5), Event("A", 1.0), Event("B", 2.0), Event("C", 3.0)]
        )
        _, matches = run_nfa(
            "PATTERN SEQ(A a, KL(B b), C c) WITHIN 10", stream
        )
        # Only the B between A and C qualifies.
        assert len(matches) == 1
        assert matches[0]["b"][0].timestamp == 2.0


class TestSelectionStrategies:
    def test_unknown_selection_rejected(self):
        d = decompose(parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5"))
        with pytest.raises(EngineError):
            NFAEngine(d, OrderPlan(("a", "b")), selection="sometimes")

    def test_next_consumes_events(self):
        stream = Stream(
            [Event("A", 1.0), Event("A", 1.5), Event("B", 2.0), Event("B", 2.5)]
        )
        _, matches = run_nfa(
            "PATTERN SEQ(A a, B b) WITHIN 5", stream, selection="next"
        )
        # 2 disjoint matches instead of the 4 of skip-till-any.
        assert len(matches) == 2
        used = [m["a"].seq for m in matches] + [m["b"].seq for m in matches]
        assert len(used) == len(set(used))

    def test_any_generates_all_combinations(self):
        stream = Stream(
            [Event("A", 1.0), Event("A", 1.5), Event("B", 2.0), Event("B", 2.5)]
        )
        _, matches = run_nfa("PATTERN SEQ(A a, B b) WITHIN 5", stream)
        assert len(matches) == 4

    def test_next_match_counts_never_exceed_any(self):
        stream = make_stream(13, count=80, types="ABC")
        _, any_matches = run_nfa(
            "PATTERN SEQ(A a, B b, C c) WITHIN 4", stream
        )
        _, next_matches = run_nfa(
            "PATTERN SEQ(A a, B b, C c) WITHIN 4", stream, selection="next"
        )
        assert len(next_matches) <= len(any_matches)

    def test_tree_engine_supports_next(self):
        d = decompose(parse_pattern("PATTERN SEQ(A a, B b) WITHIN 5"))
        stream = Stream(
            [Event("A", 1.0), Event("A", 1.5), Event("B", 2.0), Event("B", 2.5)]
        )
        engine = TreeEngine(d, TreePlan(join("a", "b")), selection="next")
        matches = engine.run(stream)
        used = [m["a"].seq for m in matches] + [m["b"].seq for m in matches]
        assert len(used) == len(set(used))


class TestOutputProfiler:
    def test_most_frequent_last(self):
        stream = Stream(
            [Event("B", 1.0), Event("A", 2.0), Event("B", 3.0), Event("A", 4.0)]
        )
        d = decompose(parse_pattern("PATTERN AND(A a, B b) WITHIN 5"))
        engine = NFAEngine(d, OrderPlan(("a", "b")))
        profiler = OutputProfiler()
        profiler.observe_all(engine.run(stream))
        assert profiler.most_frequent_last() in ("a", "b")
        assert profiler.observed > 0
        distribution = profiler.last_distribution()
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_empty_profiler(self):
        profiler = OutputProfiler()
        assert profiler.most_frequent_last() is None
        assert profiler.most_frequent_order() is None
        assert profiler.last_distribution() == {}
