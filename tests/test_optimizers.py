"""Tests for all plan-generation algorithms (Section 7.1)."""

import pytest

from repro.cost import ThroughputCostModel
from repro.errors import OptimizerError
from repro.optimizers import (
    DPBushy,
    DPLeftDeep,
    EventFrequencyOrder,
    GreedyOrder,
    IterativeImprovementGreedy,
    IterativeImprovementRandom,
    KBZOrder,
    SimulatedAnnealingOrder,
    TrivialOrder,
    ZStreamOrderedTree,
    ZStreamTree,
    available_algorithms,
    make_optimizer,
)
from repro.patterns import decompose, parse_pattern
from repro.plans import enumerate_bushy_trees, enumerate_orders
from repro.stats import PatternStatistics, StatisticsCatalog

MODEL = ThroughputCostModel()


def problem(rates, selectivities, window=2.0, operator="AND"):
    """Build (decomposed, stats) for a pure pattern over given stats."""
    names = sorted(rates)
    spec = ", ".join(f"{n.upper()} {n}" for n in names)
    pattern = parse_pattern(f"PATTERN {operator}({spec}) WITHIN {window}")
    d = decompose(pattern)
    sel = {frozenset(k): v for k, v in selectivities.items()}
    stats = PatternStatistics(
        d.positive_variables,
        window,
        {n: rates[n] for n in names},
        sel,
    )
    return d, stats


FOUR = problem(
    {"a": 5.0, "b": 1.0, "c": 9.0, "d": 0.5},
    {("a", "c"): 0.01, ("b", "d"): 0.3},
)


class TestNativeGenerators:
    def test_trivial_keeps_pattern_order(self):
        d, stats = FOUR
        plan = TrivialOrder().generate(d, stats, MODEL)
        assert plan.variables == ("a", "b", "c", "d")

    def test_efreq_sorts_by_rate(self):
        d, stats = FOUR
        plan = EventFrequencyOrder().generate(d, stats, MODEL)
        rates = [stats.rate(v) for v in plan.variables]
        assert rates == sorted(rates)

    def test_efreq_ignores_selectivities(self):
        # EFREQ's blind spot (the paper's motivating weakness): it cannot
        # exploit the extremely selective a-c pair when rates alone point
        # elsewhere.
        d, stats = problem(
            {"a": 5.0, "b": 4.0, "c": 9.0, "d": 3.0},
            {("a", "c"): 0.001, ("b", "d"): 0.3},
        )
        efreq = EventFrequencyOrder().generate(d, stats, MODEL)
        best = DPLeftDeep().generate(d, stats, MODEL)
        assert MODEL.order_cost(best.variables, stats) < MODEL.order_cost(
            efreq.variables, stats
        )


class TestGreedy:
    def test_first_pick_is_min_step(self):
        d, stats = FOUR
        plan = GreedyOrder().generate(d, stats, MODEL)
        first = plan.variables[0]
        costs = {
            v: MODEL.order_step_cost(frozenset(), v, stats)
            for v in d.positive_variables
        }
        assert costs[first] == min(costs.values())

    def test_usually_beats_efreq_and_never_beats_dp(self):
        # GREEDY has no optimality guarantee, but on random instances it
        # should win against the rate-only heuristic most of the time and
        # can never beat the exact DP optimum.
        from .conftest import make_catalog

        wins = ties = losses = 0
        for seed in range(12):
            catalog = make_catalog(seed=seed, selectivity_pairs=3)
            pattern = parse_pattern(
                "PATTERN AND(A a, B b, C c, D d) WITHIN 3"
            )
            d = decompose(pattern)
            stats = PatternStatistics.for_planning(d, catalog)
            greedy = MODEL.order_cost(
                GreedyOrder().generate(d, stats, MODEL).variables, stats
            )
            efreq = MODEL.order_cost(
                EventFrequencyOrder().generate(d, stats, MODEL).variables,
                stats,
            )
            optimum = MODEL.order_cost(
                DPLeftDeep().generate(d, stats, MODEL).variables, stats
            )
            assert greedy >= optimum * (1 - 1e-9)
            if greedy < efreq - 1e-9:
                wins += 1
            elif greedy > efreq + 1e-9:
                losses += 1
            else:
                ties += 1
        assert wins + ties > losses


class TestDynamicProgramming:
    @pytest.mark.parametrize("seed", range(8))
    def test_dp_ld_matches_brute_force(self, seed):
        from .conftest import make_catalog

        catalog = make_catalog(seed=seed, selectivity_pairs=3)
        pattern = parse_pattern("PATTERN AND(A a, B b, C c, D d) WITHIN 2")
        d = decompose(pattern)
        stats = PatternStatistics.for_planning(d, catalog)
        plan = DPLeftDeep().generate(d, stats, MODEL)
        best = min(
            MODEL.order_cost(o.variables, stats)
            for o in enumerate_orders(d.positive_variables)
        )
        assert MODEL.order_cost(plan.variables, stats) == pytest.approx(best)

    @pytest.mark.parametrize("seed", range(8))
    def test_dp_b_matches_brute_force(self, seed):
        from .conftest import make_catalog

        catalog = make_catalog(seed=seed, selectivity_pairs=3)
        pattern = parse_pattern("PATTERN AND(A a, B b, C c, D d) WITHIN 2")
        d = decompose(pattern)
        stats = PatternStatistics.for_planning(d, catalog)
        plan = DPBushy().generate(d, stats, MODEL)
        best = min(
            MODEL.tree_cost(t, stats)
            for t in enumerate_bushy_trees(d.positive_variables)
        )
        assert MODEL.tree_cost(plan, stats) == pytest.approx(best)

    def test_dp_b_no_worse_than_dp_ld(self):
        d, stats = FOUR
        order = DPLeftDeep().generate(d, stats, MODEL)
        tree = DPBushy().generate(d, stats, MODEL)
        from repro.plans import TreePlan

        assert MODEL.tree_cost(tree, stats) <= MODEL.tree_cost(
            TreePlan.left_deep(order), stats
        ) * (1 + 1e-9)

    def test_no_cartesian_restriction(self):
        # With cross products disabled and a chain query graph, every
        # prefix of the DP-LD order must stay connected.
        d, stats = problem(
            {"a": 2.0, "b": 3.0, "c": 4.0, "d": 5.0},
            {("a", "b"): 0.5, ("b", "c"): 0.5, ("c", "d"): 0.5},
        )
        plan = DPLeftDeep(allow_cartesian=False).generate(d, stats, MODEL)
        edges = {frozenset(p) for p in [("a", "b"), ("b", "c"), ("c", "d")]}
        placed = [plan.variables[0]]
        for variable in plan.variables[1:]:
            assert any(
                frozenset((variable, other)) in edges for other in placed
            )
            placed.append(variable)


class TestIterativeImprovement:
    def test_reaches_local_minimum(self):
        d, stats = FOUR
        plan = IterativeImprovementRandom(seed=1).generate(d, stats, MODEL)
        cost = MODEL.order_cost(plan.variables, stats)
        # No single swap improves a local minimum.
        order = list(plan.variables)
        for i in range(len(order)):
            for j in range(i + 1, len(order)):
                neighbor = list(order)
                neighbor[i], neighbor[j] = neighbor[j], neighbor[i]
                assert MODEL.order_cost(neighbor, stats) >= cost - 1e-9

    def test_greedy_start_no_worse_than_greedy(self):
        d, stats = FOUR
        greedy_cost = MODEL.order_cost(
            GreedyOrder().generate(d, stats, MODEL).variables, stats
        )
        ii_cost = MODEL.order_cost(
            IterativeImprovementGreedy().generate(d, stats, MODEL).variables,
            stats,
        )
        assert ii_cost <= greedy_cost * (1 + 1e-9)

    def test_restarts_never_hurt(self):
        d, stats = FOUR
        one = IterativeImprovementRandom(seed=5, restarts=1).generate(
            d, stats, MODEL
        )
        many = IterativeImprovementRandom(seed=5, restarts=5).generate(
            d, stats, MODEL
        )
        assert MODEL.order_cost(many.variables, stats) <= MODEL.order_cost(
            one.variables, stats
        ) * (1 + 1e-9)

    def test_bad_configuration(self):
        with pytest.raises(OptimizerError):
            IterativeImprovementRandom(restarts=0)
        with pytest.raises(OptimizerError):
            IterativeImprovementRandom(moves=("teleport",))


class TestZStream:
    def test_fixed_leaf_order_preserved(self):
        d, stats = FOUR
        plan = ZStreamTree().generate(d, stats, MODEL)
        assert plan.leaf_order == d.positive_variables

    def test_optimal_among_fixed_order_trees(self):
        from repro.plans import enumerate_trees_fixed_order

        d, stats = FOUR
        plan = ZStreamTree().generate(d, stats, MODEL)
        best = min(
            MODEL.tree_cost(t, stats)
            for t in enumerate_trees_fixed_order(d.positive_variables)
        )
        assert MODEL.tree_cost(plan, stats) == pytest.approx(best)

    def test_zstream_ord_beats_or_ties_zstream(self):
        # Figure 3 scenario: restrictive predicate between the outer
        # events; plain ZStream cannot put them together.
        d, stats = problem(
            {"a": 3.0, "b": 3.0, "c": 3.0},
            {("a", "c"): 0.01},
            operator="AND",
        )
        zs = MODEL.tree_cost(ZStreamTree().generate(d, stats, MODEL), stats)
        zso = MODEL.tree_cost(
            ZStreamOrderedTree().generate(d, stats, MODEL), stats
        )
        assert zso < zs

    def test_dp_b_no_worse_than_zstream_variants(self):
        d, stats = FOUR
        dpb = MODEL.tree_cost(DPBushy().generate(d, stats, MODEL), stats)
        for generator in (ZStreamTree(), ZStreamOrderedTree()):
            other = MODEL.tree_cost(generator.generate(d, stats, MODEL), stats)
            assert dpb <= other * (1 + 1e-9)


class TestKBZ:
    def test_chain_graph_matches_dp_without_cartesian(self):
        d, stats = problem(
            {"a": 8.0, "b": 2.0, "c": 4.0, "d": 1.0},
            {("a", "b"): 0.1, ("b", "c"): 0.5, ("c", "d"): 0.9},
        )
        kbz = KBZOrder(fallback=False).generate(d, stats, MODEL)
        dp = DPLeftDeep(allow_cartesian=False).generate(d, stats, MODEL)
        assert MODEL.order_cost(kbz.variables, stats) == pytest.approx(
            MODEL.order_cost(dp.variables, stats)
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_star_graph_optimal(self, seed):
        import random

        rng = random.Random(seed)
        rates = {v: rng.uniform(0.5, 8.0) for v in "abcd"}
        selectivities = {
            ("a", other): rng.uniform(0.05, 0.9) for other in "bcd"
        }
        d, stats = problem(rates, selectivities)
        kbz = KBZOrder(fallback=False).generate(d, stats, MODEL)
        dp = DPLeftDeep(allow_cartesian=False).generate(d, stats, MODEL)
        assert MODEL.order_cost(kbz.variables, stats) == pytest.approx(
            MODEL.order_cost(dp.variables, stats)
        )

    def test_cyclic_graph_falls_back(self):
        d, stats = problem(
            {"a": 1.0, "b": 2.0, "c": 3.0},
            {("a", "b"): 0.5, ("b", "c"): 0.5, ("a", "c"): 0.5},
        )
        with pytest.raises(OptimizerError):
            KBZOrder(fallback=False).generate(d, stats, MODEL)
        plan = KBZOrder().generate(d, stats, MODEL)  # falls back to GREEDY
        assert set(plan.variables) == {"a", "b", "c"}


class TestSimulatedAnnealing:
    def test_finds_good_plan_on_small_instance(self):
        d, stats = FOUR
        plan = SimulatedAnnealingOrder(seed=3).generate(d, stats, MODEL)
        best = min(
            MODEL.order_cost(o.variables, stats)
            for o in enumerate_orders(d.positive_variables)
        )
        assert MODEL.order_cost(plan.variables, stats) <= best * 1.5

    def test_deterministic_under_seed(self):
        d, stats = FOUR
        a = SimulatedAnnealingOrder(seed=9).generate(d, stats, MODEL)
        b = SimulatedAnnealingOrder(seed=9).generate(d, stats, MODEL)
        assert a == b

    def test_bad_configuration(self):
        with pytest.raises(OptimizerError):
            SimulatedAnnealingOrder(cooling=1.5)


class TestRegistry:
    def test_all_names_resolve(self):
        for name in available_algorithms():
            generator = make_optimizer(name)
            assert generator.kind in ("order", "tree")

    def test_unknown_name(self):
        with pytest.raises(OptimizerError):
            make_optimizer("MAGIC")

    def test_kwargs_forwarded(self):
        generator = make_optimizer("II-RANDOM", restarts=4)
        assert generator.restarts == 4
