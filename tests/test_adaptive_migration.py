"""Live plan migration (:mod:`repro.adaptive`, PR 4 tentpole).

The contract under test: a forced mid-stream plan switch under the
``recompute`` and ``parallel-drain`` policies produces the *byte-
identical* canonical match list of a run that never switches — across
tree and NFA plans, theta / equality / Kleene / negation workloads, and
cross-runtime (order plan -> tree plan) switches — while the ``restart``
baseline demonstrably loses the matches whose partial state straddles
the swap.  Plus: the plan-independent snapshot API itself, the
outgoing-engine drain at swap (trailing-NOT regression), and the
migration counters.
"""

import random

import pytest

from repro import (
    AdaptiveController,
    DriftDetector,
    StatisticsCatalog,
    build_engines,
    parse_pattern,
    plan_pattern,
)
from repro.engines import EngineSnapshot
from repro.errors import EngineError
from repro.events import Event, Stream
from repro.parallel import canonical_order, match_records

MAX_KLEENE = 3

#: (workload id, pattern text) — one per paper operator family.
WORKLOADS = [
    (
        "theta",
        "PATTERN SEQ(A a, B b, C c) "
        "WHERE a.v < b.v AND b.v < c.v WITHIN 2",
    ),
    (
        "equality",
        "PATTERN SEQ(A a, B b, C c) "
        "WHERE a.k = b.k AND b.k = c.k WITHIN 2",
    ),
    (
        "kleene",
        "PATTERN SEQ(A a, KL(B b), C c) WHERE a.k = c.k WITHIN 1.5",
    ),
    (
        "trailing-not",
        "PATTERN SEQ(A a, C c, NOT(B b)) WHERE a.v < c.v WITHIN 2",
    ),
    (
        "and-not",
        "PATTERN AND(A a, C c, NOT(D d)) WITHIN 1.5",
    ),
]

#: (runtime id, initial algorithm, algorithms forced at the switches).
RUNTIMES = [
    ("nfa", "GREEDY", ("TRIVIAL", "DP-LD")),
    ("tree", "ZSTREAM", ("DP-B", "ZSTREAM-ORD")),
]

SWITCH_POINTS = (200, 400)


def mixed_stream(seed=11, count=600, keys=6):
    """A/B/C uniformly, plus a rare D (the and-not forbidden type)."""
    rng = random.Random(seed)
    events, t = [], 0.0
    for _ in range(count):
        t += rng.uniform(0.01, 0.1)
        name = "D" if rng.random() < 0.04 else rng.choice("ABC")
        events.append(
            Event(
                name,
                t,
                {"k": rng.randrange(keys), "v": rng.random()},
            )
        )
    return Stream(events)


def catalog():
    return StatisticsCatalog({"A": 2.0, "B": 2.0, "C": 2.0, "D": 0.3})


def baseline_records(pattern, stream, algorithm):
    planned = plan_pattern(pattern, catalog(), algorithm=algorithm)
    engine = build_engines(planned, max_kleene_size=MAX_KLEENE)
    return match_records(canonical_order(engine.run(stream)))


def run_with_forced_switches(
    pattern, stream, algorithm, policy, switch_algorithms
):
    controller = AdaptiveController(
        pattern,
        catalog(),
        algorithm=algorithm,
        migration=policy,
        check_interval=10**9,
        detector=DriftDetector(threshold=1e9),
        max_kleene_size=MAX_KLEENE,
    )
    points = dict(zip(SWITCH_POINTS, switch_algorithms))
    matches = []
    for index, event in enumerate(stream):
        matches.extend(controller.process(event))
        if index in points:
            matches.extend(
                controller.force_reoptimize(algorithm=points[index])
            )
    matches.extend(controller.finalize())
    return match_records(canonical_order(matches)), controller


class TestMigrationEquivalence:
    """recompute / parallel-drain == never-switching run, byte for byte."""

    @pytest.mark.parametrize("policy", ["recompute", "parallel-drain"])
    @pytest.mark.parametrize(
        "runtime,algorithm,switch_algorithms",
        RUNTIMES,
        ids=[r[0] for r in RUNTIMES],
    )
    @pytest.mark.parametrize(
        "workload,pattern_text", WORKLOADS, ids=[w[0] for w in WORKLOADS]
    )
    def test_forced_switches_are_lossless(
        self, workload, pattern_text, runtime, algorithm,
        switch_algorithms, policy,
    ):
        pattern = parse_pattern(pattern_text)
        stream = mixed_stream()
        expected = baseline_records(pattern, stream, algorithm)
        assert expected, "workload must produce matches to be meaningful"
        actual, controller = run_with_forced_switches(
            pattern, stream, algorithm, policy, switch_algorithms
        )
        assert actual == expected
        assert controller.reoptimizations == len(SWITCH_POINTS)
        assert controller.metrics.migrations == len(SWITCH_POINTS)

    @pytest.mark.parametrize(
        "workload,pattern_text",
        [WORKLOADS[0], WORKLOADS[3], WORKLOADS[4]],
        ids=[WORKLOADS[0][0], WORKLOADS[3][0], WORKLOADS[4][0]],
    )
    def test_forced_switch_mid_drain_is_lossless(
        self, workload, pattern_text
    ):
        """A second forced switch landing inside a parallel-drain window
        must switch from the outgoing engine (the only one with the
        complete window history), not from the half-built replacement."""
        pattern = parse_pattern(pattern_text)
        stream = mixed_stream(seed=17)
        expected = baseline_records(pattern, stream, "GREEDY")
        controller = AdaptiveController(
            pattern,
            catalog(),
            algorithm="GREEDY",
            migration="parallel-drain",
            check_interval=10**9,
            detector=DriftDetector(threshold=1e9),
            max_kleene_size=MAX_KLEENE,
        )
        matches = []
        for index, event in enumerate(stream):
            matches.extend(controller.process(event))
            if index in (200, 208, 400):  # 208 lands mid-drain
                matches.extend(controller.force_reoptimize())
        matches.extend(controller.finalize())
        assert match_records(canonical_order(matches)) == expected

    def test_forced_switch_mid_drain_keeps_negation_candidates(self):
        """Regression: the engine built by a mid-drain forced switch
        must still see forbidden events from before the *first* swap."""
        pattern = parse_pattern("PATTERN AND(A a, B b, NOT(C c)) WITHIN 3")
        cat = StatisticsCatalog({"A": 1.0, "B": 1.0, "C": 0.5})
        stream = Stream(
            [
                Event("C", 1.0, {}),  # forbids any A/B pair within reach
                Event("A", 1.2, {}),  # first forced switch here
                Event("A", 1.5, {}),
                Event("A", 2.0, {}),  # second switch, mid-drain
                Event("A", 2.2, {}),
                Event("B", 2.5, {}),
            ]
        )
        expected = match_records(
            canonical_order(
                build_engines(plan_pattern(pattern, cat)).run(stream)
            )
        )
        controller = AdaptiveController(
            pattern,
            cat,
            migration="parallel-drain",
            check_interval=10**9,
            detector=DriftDetector(threshold=1e9),
        )
        matches = []
        for index, event in enumerate(stream):
            matches.extend(controller.process(event))
            if index in (1, 3):
                matches.extend(controller.force_reoptimize())
        matches.extend(controller.finalize())
        assert match_records(canonical_order(matches)) == expected

    @pytest.mark.parametrize("policy", ["recompute", "parallel-drain"])
    def test_cross_runtime_switch_is_lossless(self, policy):
        """Snapshots are plan-independent: an order-plan engine's state
        migrates into a tree-plan engine and back."""
        pattern = parse_pattern(WORKLOADS[0][1])
        stream = mixed_stream(seed=23)
        expected = baseline_records(pattern, stream, "GREEDY")
        actual, _ = run_with_forced_switches(
            pattern, stream, "GREEDY", policy, ("ZSTREAM", "DP-LD")
        )
        assert actual == expected


class TestRestartBaseline:
    """The restart policy measurably loses in-flight matches — the gap
    the migration policies close."""

    def test_restart_loses_matches_migration_saves(self):
        pattern = parse_pattern(WORKLOADS[0][1])
        stream = mixed_stream()
        expected = baseline_records(pattern, stream, "GREEDY")
        restarted, restart_ctrl = run_with_forced_switches(
            pattern, stream, "GREEDY", "restart", ("TRIVIAL", "DP-LD")
        )
        migrated, migrate_ctrl = run_with_forced_switches(
            pattern, stream, "GREEDY", "recompute", ("TRIVIAL", "DP-LD")
        )
        assert len(restarted) < len(expected)
        assert migrated == expected
        # Every lost match bound at least one pre-swap event; the saved
        # counter counts exactly those, so it must cover the gap.
        lost = len(expected) - len(restarted)
        assert (
            migrate_ctrl.metrics.matches_saved_by_migration == lost
        )
        assert restart_ctrl.metrics.pm_migrated == 0
        assert migrate_ctrl.metrics.pm_migrated > 0

    def test_restart_output_is_subset(self):
        pattern = parse_pattern(WORKLOADS[1][1])
        stream = mixed_stream(seed=5)
        expected = baseline_records(pattern, stream, "GREEDY")
        restarted, _ = run_with_forced_switches(
            pattern, stream, "GREEDY", "restart", ("TRIVIAL", "DP-LD")
        )
        assert set(restarted) <= set(expected)


class TestOutgoingEngineDrain:
    """Satellite regression: a swap must never drop *completed* matches
    deferred on trailing-negation deadlines."""

    PATTERN = "PATTERN SEQ(A a, B b, NOT(C c)) WITHIN 3"

    def stream(self):
        # A@1, B@1.5 completes a match deferred until the negation
        # deadline (min_ts + W = 4); the forced switch happens while it
        # is pending; events at 5 and 6 close the range.
        return Stream(
            [
                Event("A", 1.0, {}),
                Event("B", 1.5, {}),
                Event("A", 2.0, {}),
                Event("A", 5.0, {}),
                Event("B", 6.0, {}),
            ]
        )

    def expected(self):
        pattern = parse_pattern(self.PATTERN)
        planned = plan_pattern(
            pattern, StatisticsCatalog({"A": 1.0, "B": 1.0, "C": 0.5})
        )
        engine = build_engines(planned)
        return match_records(canonical_order(engine.run(self.stream())))

    @pytest.mark.parametrize(
        "policy", ["restart", "recompute", "parallel-drain"]
    )
    def test_pending_matches_survive_swap(self, policy):
        pattern = parse_pattern(self.PATTERN)
        controller = AdaptiveController(
            pattern,
            StatisticsCatalog({"A": 1.0, "B": 1.0, "C": 0.5}),
            migration=policy,
            check_interval=10**9,
            detector=DriftDetector(threshold=1e9),
        )
        matches = []
        for index, event in enumerate(self.stream()):
            matches.extend(controller.process(event))
            if index == 2:  # the A@2 event: the 1.0/1.5 match is pending
                matches.extend(controller.force_reoptimize())
        matches.extend(controller.finalize())
        records = match_records(canonical_order(matches))
        expected = self.expected()
        # The deferred match is stamped with its deadline either way, so
        # even the restart drain reproduces the exact record.
        assert records == expected
        assert len(records) == 2

    def test_drain_end_does_not_duplicate_due_post_swap_pending(self):
        """A sparse stream can make the first event past the drain
        deadline also pass a post-swap pending's own deadline; that
        pending lives in *both* engines and must be emitted exactly
        once (by the new engine, which owns post-swap-only matches)."""
        pattern = parse_pattern(self.PATTERN)  # WITHIN 3
        stream = Stream(
            [
                Event("A", 9.0, {}),
                Event("A", 10.0, {}),   # swap here: drain until 13
                Event("A", 11.0, {}),
                Event("B", 11.2, {}),   # pendings: a@9/a@10 (pre-swap)
                                        # and a@11 (post-swap, deadline 14)
                Event("A", 20.0, {}),   # ends drain AND passes deadline 14
                Event("B", 21.0, {}),
            ]
        )
        cat = StatisticsCatalog({"A": 1.0, "B": 1.0, "C": 0.5})
        planned = plan_pattern(pattern, cat)
        expected = match_records(
            canonical_order(build_engines(planned).run(stream))
        )
        controller = AdaptiveController(
            pattern,
            cat,
            migration="parallel-drain",
            check_interval=10**9,
            detector=DriftDetector(threshold=1e9),
        )
        matches = []
        for index, event in enumerate(stream):
            matches.extend(controller.process(event))
            if index == 1:
                matches.extend(controller.force_reoptimize())
        matches.extend(controller.finalize())
        assert match_records(canonical_order(matches)) == expected

    def test_violated_pending_not_resurrected_by_migration(self):
        """A forbidden event after the swap must still kill a pending
        match created before it."""
        pattern = parse_pattern(self.PATTERN)
        stream = Stream(
            [
                Event("A", 1.0, {}),
                Event("B", 1.5, {}),
                Event("A", 2.0, {}),
                Event("C", 2.5, {}),  # violates the pending post-swap
                Event("A", 5.0, {}),
                Event("B", 6.0, {}),
            ]
        )
        for policy in ("recompute", "parallel-drain"):
            controller = AdaptiveController(
                pattern,
                StatisticsCatalog({"A": 1.0, "B": 1.0, "C": 0.5}),
                migration=policy,
                check_interval=10**9,
                detector=DriftDetector(threshold=1e9),
            )
            matches = []
            for index, event in enumerate(stream):
                matches.extend(controller.process(event))
                if index == 2:
                    matches.extend(controller.force_reoptimize())
            matches.extend(controller.finalize())
            keys = {
                tuple(sorted((v, e.seq) for v, e in m.bindings.items()))
                for m in matches
            }
            assert (("a", 0), ("b", 1)) not in keys, policy


class TestSnapshotAPI:
    def planned(self, text="PATTERN SEQ(A a, B b) WHERE a.k = b.k WITHIN 2"):
        return plan_pattern(parse_pattern(text), catalog())

    def test_export_state_shape(self):
        engine = build_engines(self.planned())
        stream = mixed_stream(seed=3, count=120)
        engine.run(stream)
        snapshot = engine.export_state()
        assert isinstance(snapshot, EngineSnapshot)
        assert snapshot.window == 2
        # Window buffer holds only in-window, pattern-relevant events.
        assert all(
            e.timestamp >= snapshot.now - snapshot.window
            for e in snapshot.events
        )
        assert all(e.type in ("A", "B") for e in snapshot.events)
        assert snapshot.partial_match_count == engine.live_partial_matches()
        for bound, trigger_seq in snapshot.partial_matches:
            assert trigger_seq >= 0
            for variable, seqs in bound:
                assert variable in ("a", "b")
                assert all(isinstance(s, int) for s in seqs)

    def test_seed_from_rebuilds_identical_behaviour(self):
        stream = list(mixed_stream(seed=9, count=400))
        head, tail = stream[:200], stream[200:]
        donor = build_engines(self.planned())
        for event in head:
            donor.process(event)
        seeded = build_engines(self.planned(), seed=donor.export_state())
        tail_donor, tail_seeded = [], []
        for event in tail:
            tail_donor.extend(donor.process(event))
            tail_seeded.extend(seeded.process(event))
        tail_donor.extend(donor.finalize())
        tail_seeded.extend(seeded.finalize())
        assert match_records(
            canonical_order(tail_seeded)
        ) == match_records(canonical_order(tail_donor))
        # Replay bookkeeping: suppressed matches do not count.
        assert seeded.metrics.matches_emitted == len(tail_seeded)
        assert seeded.metrics.events_processed == len(tail)

    def test_seed_from_requires_fresh_engine(self):
        donor = build_engines(self.planned())
        donor.process(Event("A", 1.0, {"k": 1}, seq=0))
        snapshot = donor.export_state()
        used = build_engines(self.planned())
        used.process(Event("A", 1.0, {"k": 1}, seq=0))
        with pytest.raises(EngineError):
            used.seed_from(snapshot)

    def test_seed_from_rejects_window_mismatch(self):
        donor = build_engines(self.planned())
        snapshot = donor.export_state()
        other = build_engines(
            self.planned("PATTERN SEQ(A a, B b) WITHIN 5")
        )
        with pytest.raises(EngineError):
            other.seed_from(snapshot)

    def test_parallel_and_shared_seeding_rejected(self):
        planned = self.planned()
        with pytest.raises(EngineError):
            build_engines(
                planned, parallel=2, seed=EngineSnapshot((), 0.0, 2.0)
            )

    def test_restrictive_selection_requires_restart(self):
        with pytest.raises(EngineError):
            AdaptiveController(
                parse_pattern("PATTERN SEQ(A a, B b) WITHIN 2"),
                StatisticsCatalog({"A": 1.0, "B": 1.0}),
                selection="next",
                migration="recompute",
            )

    def test_migration_default_adapts_to_selection(self):
        """Restrictive strategies keep their historical restart swaps
        when no migration policy is given — no new construction error."""
        restrictive = AdaptiveController(
            parse_pattern("PATTERN SEQ(A a, B b) WITHIN 2"),
            StatisticsCatalog({"A": 1.0, "B": 1.0}),
            selection="next",
        )
        assert restrictive.migration == "restart"
        default = AdaptiveController(
            parse_pattern("PATTERN SEQ(A a, B b) WITHIN 2"),
            StatisticsCatalog({"A": 1.0, "B": 1.0}),
        )
        assert default.migration == "recompute"

    def test_unknown_policy_rejected(self):
        with pytest.raises(EngineError):
            AdaptiveController(
                parse_pattern("PATTERN SEQ(A a, B b) WITHIN 2"),
                StatisticsCatalog({"A": 1.0, "B": 1.0}),
                migration="teleport",
            )


class TestMigrationMetrics:
    def test_counters_and_generation_aggregation(self):
        pattern = parse_pattern(WORKLOADS[0][1])
        stream = mixed_stream(seed=31)
        _, controller = run_with_forced_switches(
            pattern, stream, "GREEDY", "recompute", ("TRIVIAL", "DP-LD")
        )
        metrics = controller.metrics
        assert metrics.migrations == 2
        assert metrics.pm_migrated > 0
        # Every generation's event count is aggregated; replayed events
        # are not double-counted, so the total matches the stream plus
        # nothing (recompute resets the replay counter).
        assert metrics.events_processed == len(stream)
        assert metrics.matches_emitted == len(
            baseline_records(pattern, stream, "GREEDY")
        )

    def test_parallel_drain_counts_drain_overlap(self):
        pattern = parse_pattern(WORKLOADS[0][1])
        stream = mixed_stream(seed=31)
        _, controller = run_with_forced_switches(
            pattern, stream, "GREEDY", "parallel-drain", ("TRIVIAL", "DP-LD")
        )
        # One window of doubled processing per switch shows up honestly.
        assert controller.metrics.events_processed > len(stream)
        assert not controller.draining
