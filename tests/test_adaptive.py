"""Adaptive plan management (:mod:`repro.adaptive`).

Direct coverage of the re-optimization trigger machinery: the
:class:`DriftDetector` threshold semantics, the controller's
``check_interval`` cadence, the drift-gated replan decision, and the
restart-based engine swap (plan history, match continuity).
"""

import random

import pytest

from repro import Stream, StatisticsCatalog, parse_pattern
from repro.adaptive.controller import AdaptiveController
from repro.adaptive.monitor import DriftDetector
from repro.errors import StatisticsError
from repro.events import Event


def burst_stream(flip_at=200, count=400, seed=5):
    """A-heavy first half, B-heavy second half: guaranteed rate drift."""
    rng = random.Random(seed)
    events, t = [], 0.0
    for i in range(count):
        t += rng.uniform(0.05, 0.15)
        heavy, light = ("A", "B") if i < flip_at else ("B", "A")
        name = heavy if rng.random() < 0.9 else light
        events.append(Event(name, t, {"x": rng.random()}))
    return Stream(events)


PATTERN = "PATTERN SEQ(A a, B b) WITHIN 4"


class TestDriftDetector:
    def test_threshold_is_relative(self):
        detector = DriftDetector(threshold=0.5)
        assert not detector.drifted({"A": 2.0}, {"A": 2.9})  # +45%
        assert detector.drifted({"A": 2.0}, {"A": 3.1})  # +55%
        assert detector.drifted({"A": 2.0}, {"A": 0.9})  # -55%

    def test_boundary_is_exclusive(self):
        detector = DriftDetector(threshold=0.5)
        assert not detector.drifted({"A": 2.0}, {"A": 3.0})  # exactly 50%

    def test_reports_only_shared_keys(self):
        detector = DriftDetector(threshold=0.1)
        assert detector.drifted_keys(
            {"A": 1.0, "B": 1.0}, {"A": 5.0, "C": 99.0}
        ) == ["A"]

    def test_near_zero_baseline_uses_min_value_floor(self):
        detector = DriftDetector(threshold=0.5, min_value=1.0)
        # deviation 0.4 against the floor of 1.0 -> 40% < 50%
        assert not detector.drifted({"A": 0.0}, {"A": 0.4})
        assert detector.drifted({"A": 0.0}, {"A": 0.6})

    def test_invalid_threshold_rejected(self):
        with pytest.raises(StatisticsError):
            DriftDetector(threshold=0.0)


class TestControllerTriggers:
    def initial_catalog(self):
        # Deliberately wrong for the stream's second half.
        return StatisticsCatalog({"A": 9.0, "B": 1.0}, {})

    def test_reoptimizes_on_drift(self):
        stream = burst_stream()
        controller = AdaptiveController(
            parse_pattern(PATTERN),
            self.initial_catalog(),
            check_interval=50,
            detector=DriftDetector(threshold=0.5),
        )
        controller.run(stream)
        assert controller.reoptimizations >= 1
        assert len(controller.plan_history) == controller.reoptimizations + 1

    def test_no_reoptimization_below_threshold(self):
        stream = burst_stream()
        controller = AdaptiveController(
            parse_pattern(PATTERN),
            self.initial_catalog(),
            check_interval=50,
            # Effectively unreachable threshold: never re-plan.
            detector=DriftDetector(threshold=1e9),
        )
        controller.run(stream)
        assert controller.reoptimizations == 0
        assert len(controller.plan_history) == 1

    def test_check_interval_caps_reoptimization_rate(self):
        stream = burst_stream()
        controller = AdaptiveController(
            parse_pattern(PATTERN),
            self.initial_catalog(),
            check_interval=100,
            detector=DriftDetector(threshold=0.01),  # hair trigger
        )
        controller.run(stream)
        # One drift check per interval bounds the number of replans.
        assert controller.reoptimizations <= len(stream) // 100

    def test_no_check_before_interval_elapses(self):
        stream = burst_stream(count=60)
        controller = AdaptiveController(
            parse_pattern(PATTERN),
            self.initial_catalog(),
            check_interval=10_000,
            detector=DriftDetector(threshold=0.01),
        )
        controller.run(stream)
        assert controller.reoptimizations == 0

    def test_catalog_updated_with_observed_rates(self):
        stream = burst_stream()
        controller = AdaptiveController(
            parse_pattern(PATTERN),
            self.initial_catalog(),
            check_interval=50,
            detector=DriftDetector(threshold=0.5),
        )
        controller.run(stream)
        assert controller.reoptimizations >= 1
        updated = controller._catalog
        # After adapting to the B-heavy tail, B's rate estimate must
        # exceed the (badly wrong) initial 1.0.
        assert updated.rate("B") > 1.0

    def test_matches_still_reported_across_swaps(self):
        stream = burst_stream()
        controller = AdaptiveController(
            parse_pattern(PATTERN),
            self.initial_catalog(),
            check_interval=50,
            detector=DriftDetector(threshold=0.5),
        )
        matches = controller.run(stream)
        assert controller.reoptimizations >= 1
        assert matches, "the SEQ(A,B) pattern must match this stream"
        # Every reported match is a valid binding, whatever the policy.
        for match in matches:
            assert match["a"].timestamp < match["b"].timestamp


class TestSelectivityThreshold:
    """Separate rate / selectivity thresholds and mixed-key drift."""

    RATE = "A"
    SEL = frozenset(("a", "b"))

    def test_defaults_to_rate_threshold(self):
        detector = DriftDetector(threshold=0.4)
        assert detector.selectivity_threshold == 0.4

    def test_selectivity_keys_use_their_own_threshold(self):
        detector = DriftDetector(threshold=10.0, selectivity_threshold=0.2)
        # +50% rate change is under the (huge) rate threshold...
        assert not detector.drifted({self.RATE: 2.0}, {self.RATE: 3.0})
        # ...while a 25% selectivity change exceeds its own threshold.
        assert detector.drifted({self.SEL: 0.8}, {self.SEL: 0.6})

    def test_mixed_rate_and_selectivity_drift_keys(self):
        detector = DriftDetector(threshold=0.5, selectivity_threshold=0.1)
        baseline = {self.RATE: 2.0, "B": 2.0, self.SEL: 0.5,
                    frozenset(("b",)): 0.9}
        current = {self.RATE: 4.0, "B": 2.2, self.SEL: 0.54,
                   frozenset(("b",)): 0.2}
        drifted = detector.drifted_keys(baseline, current)
        # A doubled (rate drift); b's filter collapsed (selectivity
        # drift); B and the a-b pair stay inside their thresholds.
        assert set(drifted) == {self.RATE, frozenset(("b",))}

    def test_invalid_selectivity_threshold_rejected(self):
        with pytest.raises(StatisticsError):
            DriftDetector(threshold=0.5, selectivity_threshold=0.0)


class TestSelectivityDrivenReplanning:
    """The controller replans on observed-selectivity drift alone."""

    PATTERN = "PATTERN SEQ(A a, B b) WHERE a.x < b.x WITHIN 4"

    def skewed_stream(self, count=400, seed=3):
        # a.x < b.x never holds: true selectivity 0 against a catalog
        # claiming 0.9.  Rates stay dead flat.
        rng = random.Random(seed)
        events, t = [], 0.0
        for i in range(count):
            t += 0.1
            name = "A" if i % 2 == 0 else "B"
            x = 1.0 + rng.random() if name == "A" else rng.random()
            events.append(Event(name, t, {"x": x}))
        return Stream(events)

    def controller(self, detector):
        return AdaptiveController(
            parse_pattern(self.PATTERN),
            StatisticsCatalog({"A": 5.0, "B": 5.0}, {("a", "b"): 0.9}),
            check_interval=50,
            detector=detector,
            min_selectivity_observations=30,
        )

    def test_replans_on_selectivity_drift_only(self):
        controller = self.controller(
            DriftDetector(threshold=1e9, selectivity_threshold=0.5)
        )
        controller.run(self.skewed_stream())
        assert controller.reoptimizations >= 1
        # The refreshed catalog carries the observed (collapsed) value.
        assert controller._catalog.selectivity("a", "b") < 0.3
        assert controller.metrics.selectivity_observations > 0

    def test_selectivity_tracking_can_be_disabled(self):
        controller = AdaptiveController(
            parse_pattern(self.PATTERN),
            StatisticsCatalog({"A": 5.0, "B": 5.0}, {("a", "b"): 0.9}),
            check_interval=50,
            detector=DriftDetector(threshold=1e9, selectivity_threshold=0.5),
            track_selectivities=False,
        )
        controller.run(self.skewed_stream())
        assert controller.reoptimizations == 0
        assert controller.metrics.selectivity_observations == 0

    def test_implied_ordering_predicates_are_not_observed(self):
        # A pattern whose only conditions are the SEQ orderings: no
        # observable predicate exists, so no selectivity drift can fire.
        controller = AdaptiveController(
            parse_pattern("PATTERN SEQ(A a, B b) WITHIN 4"),
            StatisticsCatalog({"A": 5.0, "B": 5.0}),
            check_interval=50,
            detector=DriftDetector(threshold=1e9, selectivity_threshold=1e-6),
        )
        controller.run(self.skewed_stream())
        assert controller.reoptimizations == 0
        assert controller.metrics.selectivity_observations == 0


class TestReplanHysteresis:
    """The cost-improvement gate stops mid-transition replan cascades."""

    PATTERN = "PATTERN SEQ(A a, B b, C c) WITHIN 4"

    def cascade_stream(self, count=2000, flip_at=700, seed=11):
        """One genuine phase flip; the EWMA/sliding estimates crawl
        toward the new regime over many check intervals, so a gateless
        controller re-plans on nearly every drift check."""
        rng = random.Random(seed)
        events, t = [], 0.0
        for i in range(count):
            t += 0.05
            if i < flip_at:
                weights = (0.8, 0.1, 0.1)
            else:
                weights = (0.1, 0.1, 0.8)
            name = rng.choices("ABC", weights=weights)[0]
            events.append(Event(name, t, {"x": rng.random()}))
        return Stream(events)

    def controller(self, gate):
        return AdaptiveController(
            parse_pattern(self.PATTERN),
            StatisticsCatalog({"A": 16.0, "B": 2.0, "C": 2.0}, {}),
            check_interval=100,
            horizon=30.0,
            detector=DriftDetector(threshold=0.3),
            replan_cost_gate=gate,
        )

    def test_gate_cuts_replans_for_one_phase_flip(self):
        stream = self.cascade_stream()
        ungated = self.controller(gate=0.0)
        ungated_matches = ungated.run(stream)
        gated = self.controller(gate=0.1)
        gated_matches = gated.run(stream)
        # The flip is real: both adapt at least once ...
        assert gated.reoptimizations >= 1
        assert ungated.reoptimizations >= 3
        # ... but the gate collapses the cascade.
        assert gated.reoptimizations < ungated.reoptimizations
        assert gated.replans_suppressed >= 1
        # Migration stays exact regardless of how often plans switch
        # (canonical order: different replan cadences may interleave
        # same-event emissions differently).
        from repro.parallel.ordering import content_key

        assert sorted(content_key(m) for m in gated_matches) == sorted(
            content_key(m) for m in ungated_matches
        )

    def test_zero_gate_keeps_historical_behaviour(self):
        controller = self.controller(gate=0.0)
        controller.run(self.cascade_stream(count=800))
        assert controller.replans_suppressed == 0

    def test_suppressed_replan_keeps_catalog_baseline(self):
        # An infinite gate suppresses every switch: the plan and the
        # catalog must stay untouched while drift keeps firing.
        controller = self.controller(gate=1.0)
        controller.run(self.cascade_stream())
        assert controller.reoptimizations == 0
        assert controller.replans_suppressed >= 1
        assert len(controller.plan_history) == 1
        assert controller._catalog.rate("A") == 16.0

    def test_negative_gate_rejected(self):
        from repro.errors import EngineError

        with pytest.raises(EngineError):
            self.controller(gate=-0.1)
