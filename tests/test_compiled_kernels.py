"""Compiled kernels are outcome- and observation-identical to the AST.

Randomized-formula property tests (seeded, deterministic) for
:mod:`repro.patterns.compile`: every generated conjunction — all six
comparison operators, ``Const`` and ``Attr`` operands, Kleene tuples
(including empty ones), NaN values, missing attributes, mixed value
types — must produce, through the compiled kernel, exactly the outcome,
``predicate_evaluations`` charge, and per-predicate selectivity
observation sequence of the interpreted short-circuit loop it replaces.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.engines.metrics import EngineMetrics
from repro.events import Event
from repro.patterns.compile import (
    compile_event_kernel,
    compile_extension_kernel,
    compile_merge_kernel,
)
from repro.patterns.predicates import (
    Adjacent,
    Attr,
    Comparison,
    Const,
    FunctionPredicate,
    TimestampOrder,
)

OPERATORS = ("<", "<=", ">", ">=", "=", "!=")
ATTRS = ("x", "y", "z")
LEFT_VARS = ("a", "k")
RIGHT_VARS = ("b",)
KLEENE = ("k",)
SEEDS = range(40)


class RecordingTracker:
    """Tracker double that keeps the exact observation sequence."""

    def __init__(self) -> None:
        self.observed: list = []

    def observe(self, key, passed) -> None:
        self.observed.append((key, passed))


def rand_value(rng: random.Random):
    roll = rng.random()
    if roll < 0.55:
        return round(rng.uniform(-3, 3), 2)
    if roll < 0.7:
        return rng.choice(("low", "mid", "high"))  # str vs float: TypeError
    if roll < 0.8:
        return float("nan")
    if roll < 0.9:
        return rng.randrange(5)
    return None  # None vs anything ordered: TypeError


def rand_event(rng: random.Random, seq: int) -> Event:
    attrs = {a: rand_value(rng) for a in ATTRS if rng.random() < 0.85}
    return Event("T", rng.uniform(0, 10), attrs, seq=seq)


def rand_operand(rng: random.Random, variables):
    if rng.random() < 0.25:
        return Const(rand_value(rng))
    return Attr(rng.choice(variables), rng.choice(ATTRS))


def rand_predicates(rng: random.Random, variables, count):
    predicates = []
    for _ in range(count):
        left = rand_operand(rng, variables)
        right = rand_operand(rng, variables)
        if isinstance(left, Const) and isinstance(right, Const):
            right = Attr(rng.choice(variables), rng.choice(ATTRS))
        predicates.append(Comparison(left, rng.choice(OPERATORS), right))
    return predicates


def rand_bindings(rng: random.Random, variables, next_seq=0):
    bindings = {}
    for variable in variables:
        if variable in KLEENE:
            size = rng.randrange(0, 4)  # empty tuples stay vacuously true
            bindings[variable] = tuple(
                rand_event(rng, next_seq + i) for i in range(size)
            )
            next_seq += size
        else:
            bindings[variable] = rand_event(rng, next_seq)
            next_seq += 1
    return bindings, next_seq


def sel_keys_for(predicates) -> dict:
    """The engine's observation-key convention (BaseEngine.__init__)."""
    keys = {}
    for predicate in predicates:
        if isinstance(predicate, (TimestampOrder, Adjacent)):
            continue
        variables = predicate.variables
        if 1 <= len(variables) <= 2:
            keys[id(predicate)] = frozenset(variables)
    return keys


def interpret(predicates, bindings, sel_keys):
    """The interpreted short-circuit loop of ``_try_merge``."""
    observed = []
    evaluated = 0
    outcome = True
    for predicate in predicates:
        evaluated += 1
        passed = predicate.evaluate(bindings)
        key = sel_keys.get(id(predicate))
        if key is not None:
            observed.append((key, passed))
        if not passed:
            outcome = False
            break
    return outcome, evaluated, observed


@pytest.mark.parametrize("codegen", (False, True), ids=["closure", "codegen"])
@pytest.mark.parametrize("seed", SEEDS)
def test_merge_kernel_matches_interpreted(seed, codegen):
    rng = random.Random(seed)
    variables = LEFT_VARS + RIGHT_VARS
    predicates = rand_predicates(rng, variables, rng.randrange(1, 5))
    sel_keys = sel_keys_for(predicates)
    for observing in (False, True):
        metrics = EngineMetrics()
        tracker = RecordingTracker() if observing else None
        kernel = compile_merge_kernel(
            predicates,
            LEFT_VARS,
            RIGHT_VARS,
            KLEENE,
            metrics,
            tracker=tracker,
            sel_key_by_pred=sel_keys,
            codegen=codegen,
        )
        for _ in range(25):
            left, next_seq = rand_bindings(rng, LEFT_VARS)
            right, _ = rand_bindings(rng, RIGHT_VARS, next_seq)
            merged = {**left, **right}
            expected, evaluated, observed = interpret(
                predicates, merged, sel_keys
            )
            calls_before = metrics.predicate_kernel_calls
            evals_before = metrics.predicate_evaluations
            obs_before = list(tracker.observed) if observing else None
            assert kernel(left, right) is expected
            assert metrics.predicate_kernel_calls == calls_before + 1
            assert metrics.predicate_evaluations == evals_before + evaluated
            if observing:
                assert tracker.observed[len(obs_before):] == observed


@pytest.mark.parametrize("codegen", (False, True), ids=["closure", "codegen"])
@pytest.mark.parametrize("seed", SEEDS)
def test_extension_kernel_matches_interpreted(seed, codegen):
    """The NFA/tree extension path: new variable read from the event."""
    rng = random.Random(seed)
    new_variable = rng.choice(("b", "k"))  # scalar and Kleene extension
    prior = tuple(v for v in ("a", "k") if v != new_variable) or ("a",)
    variables = prior + (new_variable,)
    predicates = rand_predicates(rng, variables, rng.randrange(1, 5))
    sel_keys = sel_keys_for(predicates)
    metrics = EngineMetrics()
    tracker = RecordingTracker()
    kernel = compile_extension_kernel(
        predicates,
        new_variable,
        KLEENE,
        metrics,
        tracker=tracker,
        sel_key_by_pred=sel_keys,
        codegen=codegen,
    )
    for _ in range(25):
        bindings, next_seq = rand_bindings(rng, prior)
        event = rand_event(rng, next_seq)
        probe = dict(bindings)
        probe[new_variable] = event  # scalar even for a Kleene variable
        expected, evaluated, observed = interpret(predicates, probe, sel_keys)
        evals_before = metrics.predicate_evaluations
        obs_before = len(tracker.observed)
        assert kernel(bindings, event) is expected
        assert metrics.predicate_evaluations == evals_before + evaluated
        assert tracker.observed[obs_before:] == observed


@pytest.mark.parametrize("codegen", (False, True), ids=["closure", "codegen"])
@pytest.mark.parametrize("seed", SEEDS[:10])
def test_event_kernel_count_all_matches_admission(seed, codegen):
    """Tree/multi-query admission pre-charges len(filters)."""
    rng = random.Random(seed)
    predicates = rand_predicates(rng, ("a",), rng.randrange(1, 4))
    sel_keys = sel_keys_for(predicates)
    metrics = EngineMetrics()
    kernel = compile_event_kernel(
        predicates, "a", metrics, sel_key_by_pred=sel_keys, count="all",
        codegen=codegen,
    )
    for _ in range(20):
        event = rand_event(rng, 0)
        expected, _, _ = interpret(predicates, {"a": event}, sel_keys)
        evals_before = metrics.predicate_evaluations
        assert kernel(event) is expected
        # "all" charges the whole list regardless of short-circuiting.
        assert metrics.predicate_evaluations == evals_before + len(predicates)


def test_uncompilable_predicates_fall_back_exactly():
    """FunctionPredicate and Adjacent run their own evaluate, including
    Kleene universal semantics, through the minimal-view fallback."""
    rng = random.Random(7)
    calls = []

    def both_positive(a, b):
        calls.append((a, b))
        return a["x"] > 0 and b["x"] > 0

    predicates = [
        FunctionPredicate(("a", "k"), both_positive, name="both_positive"),
        Adjacent("a", "b", mode="strict"),
    ]
    metrics = EngineMetrics()
    kernel = compile_merge_kernel(
        predicates, LEFT_VARS, RIGHT_VARS, KLEENE, metrics
    )
    for _ in range(30):
        left, next_seq = rand_bindings(rng, LEFT_VARS)
        right, _ = rand_bindings(rng, RIGHT_VARS, next_seq)
        merged = {**left, **right}
        evals_before = metrics.predicate_evaluations
        try:
            expected, evaluated, _ = interpret(predicates, merged, {})
        except (KeyError, TypeError) as exc:
            # FunctionPredicate.evaluate propagates user-function
            # exceptions (missing "x", unordered types) — the fallback
            # must raise the very same way.
            with pytest.raises(type(exc)):
                kernel(left, right)
            continue
        assert kernel(left, right) is expected
        assert metrics.predicate_evaluations == evals_before + evaluated


def test_empty_kleene_tuple_is_vacuous_without_other_operand():
    """An empty tuple must not resolve the scalar operand (whose missing
    attribute would otherwise flip the outcome)."""
    predicate = Comparison(Attr("k", "x"), "<", Attr("b", "x"))
    metrics = EngineMetrics()
    kernel = compile_merge_kernel(
        [predicate], LEFT_VARS, RIGHT_VARS, KLEENE, metrics
    )
    left = {"a": Event("T", 0.0, {}, seq=0), "k": ()}
    right = {"b": Event("T", 0.0, {}, seq=1)}  # b.x missing
    assert predicate.evaluate({**left, **right}) is True
    assert kernel(left, right) is True


def test_same_kleene_variable_on_both_sides():
    predicate = Comparison(Attr("k", "x"), "<=", Attr("k", "y"))
    metrics = EngineMetrics()
    kernel = compile_merge_kernel(
        [predicate], LEFT_VARS, RIGHT_VARS, KLEENE, metrics
    )
    good = {"k": (Event("T", 0.0, {"x": 1, "y": 2}, seq=0),
                  Event("T", 0.1, {"x": 2, "y": 2}, seq=1))}
    bad = {"k": (Event("T", 0.0, {"x": 1, "y": 2}, seq=0),
                 Event("T", 0.1, {"x": 3, "y": 2}, seq=1))}
    for bindings, expected in ((good, True), (bad, False)):
        left = {"a": Event("T", 0.0, {}, seq=9), **bindings}
        assert predicate.evaluate(left) is expected
        assert kernel(left, {}) is expected


def test_nan_and_missing_attribute_comparisons_stay_false():
    nan = float("nan")
    metrics = EngineMetrics()
    cases = [
        (Comparison(Attr("a", "x"), "<", Attr("b", "x")),
         {"x": nan}, {"x": 1.0}, False),
        (Comparison(Attr("a", "x"), "!=", Attr("b", "x")),
         {"x": nan}, {"x": nan}, True),  # NaN != NaN holds
        (Comparison(Attr("a", "x"), "<", Attr("b", "x")),
         {}, {"x": 1.0}, False),  # missing attribute
        (Comparison(Attr("a", "x"), "<", Const(2.0)),
         {"x": "str"}, {}, False),  # unordered types
    ]
    for predicate, a_attrs, b_attrs, expected in cases:
        kernel = compile_merge_kernel(
            [predicate], ("a",), ("b",), (), metrics
        )
        left = {"a": Event("T", 0.0, a_attrs, seq=0)}
        right = {"b": Event("T", 0.0, b_attrs, seq=1)}
        assert predicate.evaluate({**left, **right}) is expected
        assert kernel(left, right) is expected
        assert math.isnan(nan)  # guard the test fixture itself


# -- codegen backend --------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS[:20])
def test_generated_kernels_match_closure_kernels(seed):
    """Closure vs exec-generated source, head to head on the same
    inputs: outcome, predicate_evaluations charge, and observation
    sequence must be identical — across all six operators, Kleene
    tuples (including empty), NaN, missing attributes, mixed types."""
    rng = random.Random(seed)
    variables = LEFT_VARS + RIGHT_VARS
    predicates = rand_predicates(rng, variables, rng.randrange(1, 5))
    sel_keys = sel_keys_for(predicates)
    builds = []
    for codegen in (False, True):
        metrics = EngineMetrics()
        tracker = RecordingTracker()
        builds.append(
            (
                compile_merge_kernel(
                    predicates, LEFT_VARS, RIGHT_VARS, KLEENE, metrics,
                    tracker=tracker, sel_key_by_pred=sel_keys,
                    codegen=codegen,
                ),
                metrics,
                tracker,
            )
        )
    (closure, c_metrics, c_tracker), (generated, g_metrics, g_tracker) = builds
    for _ in range(30):
        left, next_seq = rand_bindings(rng, LEFT_VARS)
        right, _ = rand_bindings(rng, RIGHT_VARS, next_seq)
        assert closure(left, right) is generated(left, right)
    assert c_metrics.predicate_evaluations == g_metrics.predicate_evaluations
    assert c_metrics.predicate_kernel_calls == g_metrics.predicate_kernel_calls
    assert c_tracker.observed == g_tracker.observed


def test_codegen_cache_hits_and_generation_counter():
    """Structurally identical kernels compile once; the second build is
    a cache hit (per-engine constants bind as defaults, so the source
    text is the cache key)."""
    from repro.patterns import clear_codegen_cache, codegen_cache_size

    clear_codegen_cache()
    assert codegen_cache_size() == 0
    predicates = [Comparison(Attr("a", "x"), "<", Attr("b", "x"))]
    metrics = EngineMetrics()
    compile_merge_kernel(predicates, ("a",), ("b",), (), metrics)
    assert metrics.kernels_generated == 1
    assert metrics.codegen_cache_hits == 0
    assert codegen_cache_size() == 1
    # Different constants, same structure: still one cache entry.
    again = [Comparison(Attr("a", "x"), "<", Attr("b", "x"))]
    compile_merge_kernel(again, ("a",), ("b",), (), metrics)
    assert metrics.kernels_generated == 1
    assert metrics.codegen_cache_hits == 1
    assert codegen_cache_size() == 1
    # codegen=False never touches the cache.
    compile_merge_kernel(again, ("a",), ("b",), (), metrics, codegen=False)
    assert metrics.kernels_generated == 1
    assert metrics.codegen_cache_hits == 1


def test_dump_kernels_hook_writes_sources(tmp_path, monkeypatch):
    """REPRO_DUMP_KERNELS=<dir> writes every generated source file."""
    from repro.patterns import clear_codegen_cache

    monkeypatch.setenv("REPRO_DUMP_KERNELS", str(tmp_path))
    clear_codegen_cache()
    predicates = [Comparison(Attr("a", "x"), "=", Attr("b", "x"))]
    compile_merge_kernel(predicates, ("a",), ("b",), (), EngineMetrics())
    dumped = list(tmp_path.glob("*.py"))
    assert len(dumped) == 1
    source = dumped[0].read_text()
    assert "def kernel" in source


@pytest.mark.parametrize("codegen", (False, True), ids=["closure", "codegen"])
@pytest.mark.parametrize("count", ("each", "all", "none"))
def test_event_batch_kernel_matches_per_event(count, codegen):
    """The admission batch kernel must agree with the per-event kernel
    on every event of a chunk, and charge the same per-event totals."""
    from repro.patterns import compile_event_batch_kernel

    rng = random.Random(11)
    predicates = rand_predicates(rng, ("a",), 3)
    single_metrics = EngineMetrics()
    single = compile_event_kernel(
        predicates, "a", single_metrics, count=count, codegen=codegen
    )
    batch_metrics = EngineMetrics()
    batch = compile_event_batch_kernel(
        predicates, "a", batch_metrics, count=count, codegen=codegen
    )
    events = [rand_event(rng, seq) for seq in range(40)]
    assert batch(events) == [bool(single(e)) for e in events]
    assert (
        batch_metrics.predicate_evaluations
        == single_metrics.predicate_evaluations
    )
