"""Unit tests for the predicate algebra."""

import pytest

from repro.errors import PatternError
from repro.events import Event
from repro.patterns import (
    Adjacent,
    Attr,
    Comparison,
    ConditionSet,
    Const,
    FunctionPredicate,
    TimestampOrder,
)


def ev(type_name="A", ts=0.0, seq=-1, **attrs):
    return Event(type_name, ts, attrs, seq=seq)


class TestComparison:
    def test_attribute_vs_attribute(self):
        p = Comparison(Attr("a", "x"), "<", Attr("b", "x"))
        assert p.variables == ("a", "b")
        assert p.evaluate({"a": ev(x=1), "b": ev(x=2)})
        assert not p.evaluate({"a": ev(x=3), "b": ev(x=2)})

    def test_attribute_vs_constant(self):
        p = Comparison(Attr("a", "x"), ">=", Const(5))
        assert p.variables == ("a",)
        assert p.evaluate({"a": ev(x=5)})
        assert not p.evaluate({"a": ev(x=4)})

    @pytest.mark.parametrize(
        "op,lhs,rhs,expected",
        [
            ("<", 1, 2, True),
            ("<=", 2, 2, True),
            (">", 2, 1, True),
            (">=", 1, 2, False),
            ("=", 3, 3, True),
            ("==", 3, 4, False),
            ("!=", 3, 4, True),
        ],
    )
    def test_operators(self, op, lhs, rhs, expected):
        p = Comparison(Attr("a", "x"), op, Attr("b", "x"))
        assert p.evaluate({"a": ev(x=lhs), "b": ev(x=rhs)}) is expected

    def test_unknown_operator_rejected(self):
        with pytest.raises(PatternError):
            Comparison(Attr("a", "x"), "<>", Attr("b", "x"))

    def test_missing_attribute_is_false(self):
        p = Comparison(Attr("a", "nope"), "=", Const(1))
        assert not p.evaluate({"a": ev(x=1)})

    def test_timestamp_attribute(self):
        p = Comparison(Attr("a", "timestamp"), "<", Attr("b", "timestamp"))
        assert p.evaluate({"a": ev(ts=1.0), "b": ev(ts=2.0)})

    def test_kleene_universal_semantics(self):
        p = Comparison(Attr("a", "x"), "<", Attr("b", "x"))
        bindings = {"a": ev(x=1), "b": (ev(x=2), ev(x=3))}
        assert p.evaluate(bindings)
        bindings_bad = {"a": ev(x=1), "b": (ev(x=2), ev(x=0))}
        assert not p.evaluate(bindings_bad)

    def test_two_kleene_variables(self):
        p = Comparison(Attr("a", "x"), "<", Attr("b", "x"))
        bindings = {"a": (ev(x=1), ev(x=2)), "b": (ev(x=3), ev(x=4))}
        assert p.evaluate(bindings)
        bindings["b"] = (ev(x=3), ev(x=2))
        assert not p.evaluate(bindings)

    def test_equality_and_hash(self):
        p1 = Comparison(Attr("a", "x"), "<", Attr("b", "x"))
        p2 = Comparison(Attr("a", "x"), "<", Attr("b", "x"))
        assert p1 == p2
        assert hash(p1) == hash(p2)


class TestFunctionPredicate:
    def test_unary(self):
        p = FunctionPredicate(("a",), lambda e: e["x"] > 0, name="positive")
        assert p.evaluate({"a": ev(x=1)})
        assert not p.evaluate({"a": ev(x=-1)})
        assert "positive" in repr(p)

    def test_binary(self):
        p = FunctionPredicate(("a", "b"), lambda x, y: x["v"] == y["v"])
        assert p.evaluate({"a": ev(v=1), "b": ev(v=1)})

    def test_arity_bounds(self):
        with pytest.raises(PatternError):
            FunctionPredicate((), lambda: True)
        with pytest.raises(PatternError):
            FunctionPredicate(("a", "b", "c"), lambda *a: True)


class TestTimestampOrder:
    def test_strict_order(self):
        p = TimestampOrder("a", "b")
        assert p.evaluate({"a": ev(ts=1.0), "b": ev(ts=2.0)})
        assert not p.evaluate({"a": ev(ts=2.0), "b": ev(ts=2.0)})


class TestAdjacent:
    def test_strict_mode(self):
        p = Adjacent("a", "b")
        assert p.evaluate({"a": ev(seq=3), "b": ev(seq=4)})
        assert not p.evaluate({"a": ev(seq=3), "b": ev(seq=5)})

    def test_partition_mode(self):
        p = Adjacent("a", "b", mode="partition")
        e1 = Event("A", 1.0, {"pseq": 0}, partition="p")
        e2 = Event("A", 2.0, {"pseq": 1}, partition="p")
        e3 = Event("A", 3.0, {"pseq": 1}, partition="q")
        assert p.evaluate({"a": e1, "b": e2})
        assert not p.evaluate({"a": e1, "b": e3})

    def test_unknown_mode(self):
        with pytest.raises(PatternError):
            Adjacent("a", "b", mode="loose")


class TestConditionSet:
    def make(self):
        return ConditionSet(
            [
                Comparison(Attr("a", "x"), "<", Attr("b", "x")),
                Comparison(Attr("a", "x"), ">", Const(0)),
                Comparison(Attr("b", "x"), "=", Attr("c", "x")),
            ]
        )

    def test_views(self):
        cs = self.make()
        assert cs.variables() == {"a", "b", "c"}
        assert len(cs.filters_for("a")) == 1
        assert len(cs.filters_for("b")) == 0
        assert len(cs.between("a", "b")) == 1
        assert len(cs.between("a", "c")) == 0
        assert len(cs.involving("b")) == 2

    def test_restricted_to(self):
        cs = self.make().restricted_to({"a", "b"})
        assert len(cs) == 2

    def test_conjoin(self):
        cs = self.make()
        bigger = cs.conjoin(Comparison(Attr("c", "x"), "<", Const(5)))
        assert len(bigger) == 4
        assert len(cs) == 3  # immutable

    def test_evaluate_partial_bindings(self):
        cs = self.make()
        # Only predicates with all variables bound are checked.
        assert cs.evaluate({"a": ev(x=1)})
        assert not cs.evaluate({"a": ev(x=-1)})

    def test_evaluate_new_binding(self):
        cs = self.make()
        bindings = {"a": ev(x=1), "b": ev(x=2)}
        assert cs.evaluate_new_binding(bindings, "b")
        bad = {"a": ev(x=5), "b": ev(x=2)}
        assert not cs.evaluate_new_binding(bad, "b")
