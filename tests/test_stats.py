"""Tests for statistics catalogs, estimators, and online trackers."""

import pytest

from repro.errors import StatisticsError
from repro.events import Event, Stream
from repro.patterns import decompose, parse_pattern
from repro.stats import (
    EwmaSelectivityEstimator,
    PatternStatistics,
    SelectivityTracker,
    SlidingRateEstimator,
    StatisticsCatalog,
    estimate_pattern_catalog,
    estimate_rates,
    estimate_selectivity,
)

from .conftest import make_stream


class TestStatisticsCatalog:
    def test_rates_and_defaults(self):
        cat = StatisticsCatalog({"A": 2.0}, {frozenset(("a", "b")): 0.5})
        assert cat.rate("A") == 2.0
        assert cat.selectivity("a", "b") == 0.5
        assert cat.selectivity("a", "z") == 1.0  # no condition -> 1
        assert cat.selectivity("a") == 1.0  # no filter -> 1

    def test_unary_filter_by_string_key(self):
        cat = StatisticsCatalog({"A": 1.0}, {"a": 0.25})
        assert cat.selectivity("a") == 0.25
        assert cat.selectivity("a", "a") == 0.25

    def test_invalid_rate(self):
        with pytest.raises(StatisticsError):
            StatisticsCatalog({"A": 0.0})

    def test_invalid_selectivity(self):
        with pytest.raises(StatisticsError):
            StatisticsCatalog({"A": 1.0}, {frozenset(("a", "b")): 1.5})

    def test_unknown_rate_raises(self):
        with pytest.raises(StatisticsError):
            StatisticsCatalog({"A": 1.0}).rate("B")

    def test_updated_copies(self):
        cat = StatisticsCatalog({"A": 1.0})
        newer = cat.updated(rates={"A": 3.0}, selectivities={("a", "b"): 0.1})
        assert cat.rate("A") == 1.0
        assert newer.rate("A") == 3.0
        assert newer.selectivity("a", "b") == 0.1


class TestPatternStatistics:
    def test_for_planning_folds_filters(self):
        pattern = parse_pattern(
            "PATTERN AND(A a, B b) WHERE a.x > 0 WITHIN 10"
        )
        d = decompose(pattern)
        cat = StatisticsCatalog({"A": 2.0, "B": 1.0}, {"a": 0.5})
        stats = PatternStatistics.for_planning(d, cat)
        assert stats.rate("a") == pytest.approx(1.0)  # 2.0 * 0.5
        assert stats.rate("b") == pytest.approx(1.0)

    def test_kleene_rewrite_applied(self):
        pattern = parse_pattern("PATTERN SEQ(A a, KL(B b)) WITHIN 20")
        d = decompose(pattern)
        cat = StatisticsCatalog({"A": 1.0, "B": 0.1})
        stats = PatternStatistics.for_planning(d, cat)
        assert stats.rate("b") == pytest.approx(0.15)  # (2^2-1)/20
        plain = PatternStatistics.for_planning(d, cat, apply_kleene_rewrite=False)
        assert plain.rate("b") == pytest.approx(0.1)

    def test_expected_count(self):
        pattern = parse_pattern("PATTERN AND(A a, B b) WITHIN 10")
        stats = PatternStatistics.for_planning(
            decompose(pattern), StatisticsCatalog({"A": 2.0, "B": 1.0})
        )
        assert stats.expected_count("a") == pytest.approx(20.0)

    def test_cross_and_internal_selectivity(self):
        pattern = parse_pattern(
            "PATTERN AND(A a, B b, C c) WHERE a.x = b.x AND b.x = c.x WITHIN 1"
        )
        d = decompose(pattern)
        cat = StatisticsCatalog(
            {"A": 1, "B": 1, "C": 1},
            {frozenset(("a", "b")): 0.5, frozenset(("b", "c")): 0.25},
        )
        stats = PatternStatistics.for_planning(d, cat)
        assert stats.cross_selectivity(["a"], ["b", "c"]) == pytest.approx(0.5)
        assert stats.internal_selectivity(["a", "b", "c"]) == pytest.approx(
            0.125
        )

    def test_missing_variable_rate(self):
        with pytest.raises(StatisticsError):
            PatternStatistics(("a",), 1.0, {}, {})


class TestEstimators:
    def test_estimate_rates(self):
        events = [Event("A", float(i)) for i in range(11)]
        events += [Event("B", float(i) + 0.5) for i in range(5)]
        stream = Stream(events, sort=True)
        rates = estimate_rates(stream)
        assert rates["A"] == pytest.approx(11 / stream.duration)
        assert rates["B"] == pytest.approx(5 / stream.duration)

    def test_estimate_rates_needs_two_events(self):
        with pytest.raises(StatisticsError):
            estimate_rates(Stream([Event("A", 1.0)]))

    def test_estimate_selectivity_equal_attribute(self):
        # x uniform over 3 values -> equality selectivity ~ 1/3.
        stream = make_stream(2, count=300, types="AB", domain=3)
        pattern = parse_pattern(
            "PATTERN SEQ(A a, B b) WHERE a.x = b.x WITHIN 5"
        )
        predicate = pattern.conditions.predicates[0]
        value = estimate_selectivity(
            predicate, {"a": "A", "b": "B"}, stream, samples=3000
        )
        assert value == pytest.approx(1 / 3, abs=0.06)

    def test_estimate_pattern_catalog(self):
        stream = make_stream(3, count=200, types="ABC")
        pattern = parse_pattern(
            "PATTERN SEQ(A a, B b, C c) WHERE a.x < b.x WITHIN 5"
        )
        catalog = estimate_pattern_catalog(pattern, stream, samples=500)
        assert catalog.has_rate("A") and catalog.has_rate("C")
        assert 0.0 <= catalog.selectivity("a", "b") <= 1.0
        assert catalog.selectivity("a", "c") == 1.0

    def test_missing_type_raises(self):
        stream = make_stream(3, count=50, types="AB")
        pattern = parse_pattern("PATTERN SEQ(A a, Z z) WITHIN 5")
        with pytest.raises(StatisticsError):
            estimate_pattern_catalog(pattern, stream)


class TestSlidingRateEstimator:
    def test_rate_over_horizon(self):
        est = SlidingRateEstimator(horizon=10.0)
        for i in range(10):
            est.observe(Event("A", float(i)))
        assert est.rate("A") == pytest.approx(10 / 9, rel=0.01)

    def test_eviction(self):
        est = SlidingRateEstimator(horizon=5.0)
        est.observe(Event("A", 0.0))
        for i in range(10, 15):
            est.observe(Event("A", float(i)))
        # The t=0 arrival fell out of the horizon: 5 events over 4 seconds.
        assert est.rate("A") == pytest.approx(5 / 4.0)

    def test_unseen_type(self):
        assert SlidingRateEstimator(5.0).rate("Z") == 0.0

    def test_invalid_horizon(self):
        with pytest.raises(StatisticsError):
            SlidingRateEstimator(0.0)


class TestEwmaSelectivity:
    def test_prior_before_observations(self):
        est = EwmaSelectivityEstimator(prior=0.7)
        assert est.value == 0.7

    def test_converges(self):
        est = EwmaSelectivityEstimator(alpha=0.2)
        for i in range(200):
            est.observe(i % 4 == 0)  # 25% pass rate
        assert est.value == pytest.approx(0.25, abs=0.15)

    def test_invalid_alpha(self):
        with pytest.raises(StatisticsError):
            EwmaSelectivityEstimator(alpha=0.0)


class TestSlidingRateBoundaries:
    """Horizon eviction at exact boundary timestamps."""

    def test_event_exactly_at_cutoff_is_retained(self):
        est = SlidingRateEstimator(horizon=10.0)
        est.observe(Event("A", 0.0))
        est.observe(Event("A", 10.0))  # cutoff = 10 - 10 = 0: 0.0 stays
        assert est.rate("A") == pytest.approx(2 / 10.0)

    def test_event_just_past_cutoff_is_evicted(self):
        est = SlidingRateEstimator(horizon=10.0)
        est.observe(Event("A", 0.0))
        est.observe(Event("A", 10.0))
        est.observe(Event("A", 10.5))  # cutoff = 0.5: the 0.0 arrival dies
        assert est.rate("A") == pytest.approx(2 / 0.5)

    def test_eviction_applies_across_types(self):
        est = SlidingRateEstimator(horizon=5.0)
        est.observe(Event("A", 0.0))
        est.observe(Event("B", 1.0))
        est.observe(Event("B", 4.0))
        est.observe(Event("B", 7.0))  # cutoff = 2: evicts both t<2 arrivals
        assert est.rate("A") == 0.0
        assert est.rate("B") == pytest.approx(2 / 3.0)  # events at 4 and 7
        assert est.rates() == {
            "A": 0.0,
            "B": pytest.approx(2 / 3.0),
        }

    def test_single_event_uses_epsilon_span(self):
        est = SlidingRateEstimator(horizon=5.0)
        est.observe(Event("A", 3.0))
        # Span floor of 1e-9 keeps the rate finite and positive.
        assert est.rate("A") > 0.0


class TestEwmaConvergence:
    """Prior handling and alpha-controlled adaptation speed."""

    def test_first_observation_replaces_prior_exactly(self):
        est = EwmaSelectivityEstimator(alpha=0.05, prior=1.0)
        est.observe(False)
        assert est.value == 0.0
        assert est.observations == 1

    def test_alpha_one_tracks_last_sample(self):
        est = EwmaSelectivityEstimator(alpha=1.0)
        for sample in (True, False, True):
            est.observe(sample)
            assert est.value == (1.0 if sample else 0.0)

    def test_higher_alpha_adapts_faster(self):
        slow = EwmaSelectivityEstimator(alpha=0.01)
        fast = EwmaSelectivityEstimator(alpha=0.5)
        for est in (slow, fast):
            est.observe(True)  # both start at 1.0
            for _ in range(20):
                est.observe(False)
        assert fast.value < slow.value

    def test_geometric_decay_is_exact(self):
        est = EwmaSelectivityEstimator(alpha=0.25)
        est.observe(True)
        for _ in range(4):
            est.observe(False)
        assert est.value == pytest.approx(0.75**4)

    def test_invalid_prior(self):
        with pytest.raises(StatisticsError):
            EwmaSelectivityEstimator(prior=1.5)


class TestSelectivityTracker:
    def test_snapshot_respects_observation_floor(self):
        tracker = SelectivityTracker(alpha=1.0, min_observations=3)
        key = frozenset(("a", "b"))
        tracker.observe(key, True)
        tracker.observe(key, True)
        assert tracker.snapshot() == {}
        tracker.observe(key, False)
        assert tracker.snapshot() == {key: 0.0}
        assert tracker.observations == 3

    def test_tracks_keys_independently(self):
        tracker = SelectivityTracker(alpha=1.0, min_observations=1)
        tracker.observe(frozenset(("a", "b")), True)
        tracker.observe(frozenset(("a",)), False)
        assert tracker.snapshot() == {
            frozenset(("a", "b")): 1.0,
            frozenset(("a",)): 0.0,
        }
        assert len(tracker) == 2
        assert tracker.estimator(frozenset(("a",))).observations == 1

    def test_snapshot_plugs_into_catalog_update(self):
        tracker = SelectivityTracker(alpha=1.0, min_observations=1)
        tracker.observe(frozenset(("a", "b")), False)
        catalog = StatisticsCatalog({"A": 1.0}, {("a", "b"): 0.9})
        updated = catalog.updated(selectivities=tracker.snapshot())
        assert updated.selectivity("a", "b") == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(StatisticsError):
            SelectivityTracker(alpha=0.0)
        with pytest.raises(StatisticsError):
            SelectivityTracker(min_observations=0)
