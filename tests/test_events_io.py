"""CSV stream persistence (:mod:`repro.events.io`).

Round-trip fidelity for the corners the basic tests skip (mixed
schemas, numeric-string ambiguity, float precision) and — the part that
matters operationally — the malformed-input diagnostics: every format
violation must surface as :class:`StreamFormatError` naming the
offending row, never as a bare ``IndexError``/``ValueError`` from the
csv plumbing.
"""

import pytest

from repro.events import (
    Event,
    Stream,
    StreamFormatError,
    read_stream_csv,
    write_stream_csv,
)


class TestRoundTripFidelity:
    def test_mixed_schemas_round_trip_to_missing_attributes(self, tmp_path):
        stream = Stream(
            [
                Event("A", 1.0, {"x": 1.0, "y": 2.0}),
                Event("B", 2.0, {"z": 3.0}),
                Event("A", 3.0, {"y": 4.0}),
            ]
        )
        path = tmp_path / "mixed.csv"
        write_stream_csv(stream, path)
        back = read_stream_csv(path)
        assert [sorted(e.attribute_names()) for e in back] == [
            ["x", "y"],
            ["z"],
            ["y"],
        ]

    def test_float_precision_survives(self, tmp_path):
        value = 0.1 + 0.2  # 0.30000000000000004
        stream = Stream([Event("A", 1.0 / 3.0, {"v": value})])
        path = tmp_path / "precision.csv"
        write_stream_csv(stream, path)
        back = read_stream_csv(path)
        assert back[0].timestamp == 1.0 / 3.0
        assert back[0]["v"] == value

    def test_numeric_looking_strings_parse_as_float(self, tmp_path):
        # Documented format behavior: cells are parsed numerically when
        # possible, so a string "7" comes back as 7.0.
        stream = Stream([Event("A", 1.0, {"code": "7", "name": "x7"})])
        path = tmp_path / "strings.csv"
        write_stream_csv(stream, path)
        back = read_stream_csv(path)
        assert back[0]["code"] == 7.0
        assert back[0]["name"] == "x7"

    def test_seq_numbers_reassigned_on_read(self, tmp_path):
        stream = Stream([Event("A", 1.0), Event("B", 2.0)])
        path = tmp_path / "seq.csv"
        write_stream_csv(stream, path)
        back = read_stream_csv(path)
        assert [e.seq for e in back] == [0, 1]


class TestMalformedInput:
    def write(self, tmp_path, text):
        path = tmp_path / "bad.csv"
        path.write_text(text)
        return path

    def test_short_row_reports_row_number(self, tmp_path):
        path = self.write(tmp_path, "type,timestamp,partition,x\nA,1.0,,5\nB\n")
        with pytest.raises(StreamFormatError, match="row 3"):
            read_stream_csv(path)

    def test_unparsable_timestamp_reports_row_number(self, tmp_path):
        path = self.write(
            tmp_path, "type,timestamp,partition\nA,1.0,\nB,not-a-number,\n"
        )
        with pytest.raises(StreamFormatError, match="row 3.*not-a-number"):
            read_stream_csv(path)

    def test_empty_type_cell_rejected(self, tmp_path):
        path = self.write(tmp_path, "type,timestamp,partition\n,1.0,\n")
        with pytest.raises(StreamFormatError, match="empty type"):
            read_stream_csv(path)

    def test_foreign_header_rejected(self, tmp_path):
        path = self.write(tmp_path, "kind,when,who\nA,1.0,\n")
        with pytest.raises(StreamFormatError, match="header"):
            read_stream_csv(path)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = self.write(
            tmp_path, "type,timestamp,partition,x\nA,1.0,,5\n\nB,2.0,,\n"
        )
        back = read_stream_csv(path)
        assert [e.type for e in back] == ["A", "B"]

    def test_out_of_order_rows_surface_stream_error(self, tmp_path):
        from repro.events import StreamOrderError

        path = self.write(
            tmp_path, "type,timestamp,partition\nA,2.0,\nB,1.0,\n"
        )
        with pytest.raises(StreamOrderError):
            read_stream_csv(path)
