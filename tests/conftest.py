"""Shared test fixtures and stream builders."""

from __future__ import annotations

import random

import pytest

from repro.events import Event, Stream
from repro.patterns import decompose, parse_pattern
from repro.stats import PatternStatistics, StatisticsCatalog


def make_stream(
    seed: int,
    count: int = 40,
    types: str = "ABC",
    step_low: float = 0.1,
    step_high: float = 0.6,
    domain: int = 3,
) -> Stream:
    """Deterministic random stream with integer attribute ``x``."""
    rng = random.Random(seed)
    events, t = [], 0.0
    for _ in range(count):
        t += rng.uniform(step_low, step_high)
        events.append(Event(rng.choice(types), t, {"x": rng.randrange(domain)}))
    return Stream(events)


def make_catalog(
    types: str = "ABCD",
    seed: int = 0,
    rate_low: float = 0.5,
    rate_high: float = 10.0,
    selectivity_pairs: int = 2,
    variables: str = "abcd",
) -> StatisticsCatalog:
    """Random-but-seeded catalog over single-letter types/variables."""
    rng = random.Random(seed)
    rates = {t: rng.uniform(rate_low, rate_high) for t in types}
    names = list(variables[: len(types)])
    selectivities = {}
    pairs = [
        (a, b) for i, a in enumerate(names) for b in names[i + 1:]
    ]
    rng.shuffle(pairs)
    for a, b in pairs[:selectivity_pairs]:
        selectivities[frozenset((a, b))] = rng.uniform(0.05, 0.9)
    return StatisticsCatalog(rates, selectivities)


def stats_for(pattern_text: str, catalog: StatisticsCatalog) -> PatternStatistics:
    decomposed = decompose(parse_pattern(pattern_text))
    return PatternStatistics.for_planning(decomposed, catalog)


@pytest.fixture
def abc_stream() -> Stream:
    return make_stream(7, count=60)


@pytest.fixture
def seq_abc():
    return parse_pattern(
        "PATTERN SEQ(A a, B b, C c) WHERE a.x = c.x WITHIN 5"
    )


@pytest.fixture
def abc_catalog() -> StatisticsCatalog:
    return StatisticsCatalog(
        {"A": 2.0, "B": 4.0, "C": 1.0, "D": 0.5},
        {frozenset(("a", "c")): 0.2, frozenset(("a", "b")): 0.6},
    )
