"""Round-trip tests for the pattern formatter."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PatternError
from repro.patterns import (
    FunctionPredicate,
    Pattern,
    Primitive,
    Seq,
    format_pattern,
    parse_pattern,
)
from repro.workloads import (
    CATEGORIES,
    PatternWorkloadConfig,
    generate_pattern_set,
    stock_symbols,
)

EXAMPLES = [
    "PATTERN SEQ(A a, B b) WITHIN 5",
    "PATTERN AND(A a, B b, C c) WHERE a.x < b.x AND c.y = 3 WITHIN 10",
    "PATTERN SEQ(A a, NOT(B b), C c) WHERE b.x = a.x WITHIN 7",
    "PATTERN SEQ(A a, KL(B b), C c) WITHIN 4",
    "PATTERN OR(SEQ(A a, B b), AND(C c, D d)) WITHIN 12",
]


@pytest.mark.parametrize("text", EXAMPLES)
def test_round_trip_examples(text):
    pattern = parse_pattern(text)
    rendered = format_pattern(pattern)
    back = parse_pattern(rendered)
    assert back.root == pattern.root
    assert back.window == pattern.window
    assert len(back.conditions) == len(pattern.conditions)


def test_generated_workload_round_trips():
    config = PatternWorkloadConfig(sizes=(3, 5), patterns_per_size=2)
    for category in CATEGORIES:
        for pattern in generate_pattern_set(
            category, stock_symbols(10), config
        ):
            back = parse_pattern(format_pattern(pattern))
            assert back.root == pattern.root
            assert len(back.conditions) == len(pattern.conditions)


def test_opaque_predicate_rejected_unless_skipped():
    pattern = Pattern(
        Seq([Primitive("A", "a"), Primitive("B", "b")]),
        [FunctionPredicate(("a", "b"), lambda x, y: True)],
        5.0,
    )
    with pytest.raises(PatternError):
        format_pattern(pattern)
    rendered = format_pattern(pattern, skip_opaque=True)
    assert "WHERE" not in rendered


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_random_patterns_round_trip(seed):
    rng = random.Random(seed)
    category = rng.choice(CATEGORIES)
    size = rng.randint(3, 6)
    config = PatternWorkloadConfig(sizes=(size,), patterns_per_size=1,
                                   seed=seed)
    (pattern,) = generate_pattern_set(category, stock_symbols(8), config)
    back = parse_pattern(format_pattern(pattern))
    assert back.root == pattern.root
    assert back.window == pattern.window
