"""The observability layer: tracing, registry/exporters, introspection.

Three properties are load-bearing and tested here:

* **Zero cost when off** — with no tracer attached the engines carry no
  per-node stat objects (``tstat``/``_tstats`` stay ``None``), never
  read the span clock, and never import :mod:`repro.observe` at all
  (checked in a fresh interpreter).
* **Observation neutrality** — attaching a tracer changes no match
  sequence, and the index-probe selectivity feedback (bisect-excluded
  candidates reported as failed theta evaluations) is exactly the
  multiset of outcomes a non-bisected evaluation would have observed.
* **Introspection is live** — a socket-backed session answers the
  epoch-free ``STATS`` frame mid-stream with real per-node counters,
  and the report CLI renders the same attribution from a trace file
  and from a live poll.
"""

from __future__ import annotations

import asyncio
import json
import random
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

import repro.observe.trace as trace_module
from repro import (
    ParallelConfig,
    ParallelExecutor,
    Stream,
    build_engines,
    canonical_order,
    estimate_pattern_catalog,
    parse_pattern,
    plan_pattern,
)
from repro.engines import NFAEngine, TreeEngine
from repro.engines.metrics import EngineMetrics
from repro.engines.stores import NO_BOUND
from repro.events import Event
from repro.observe import (
    MetricsRegistry,
    NodeStat,
    Tracer,
    merge_node_stats,
    to_chrome_trace,
    to_json,
    write_chrome_trace,
    write_json,
)
from repro.observe.report import load_trace, poll_live, render_report
from repro.parallel import match_records
from repro.patterns import decompose
from repro.plans import enumerate_bushy_trees, enumerate_orders
from repro.service import Ingestor, serve_in_thread

RANGE_PATTERN = (
    "PATTERN SEQ(A a, B b, C c) WHERE a.x = b.x AND a.y < b.y WITHIN 4"
)
KEYED_PATTERN = (
    "PATTERN SEQ(A a, B b, C c) WHERE a.k = b.k AND b.k = c.k WITHIN 1.5"
)


def rand_stream(seed: int, count: int = 80) -> Stream:
    rng = random.Random(seed)
    events, t = [], 0.0
    for _ in range(count):
        t += rng.uniform(0.05, 0.4)
        events.append(
            Event(
                rng.choice("ABCD"),
                t,
                {
                    "x": rng.randrange(3),
                    "y": round(rng.uniform(0, 1), 3),
                    "k": rng.randrange(4),
                },
            )
        )
    return Stream(events)


def traced_run(text: str, stream: Stream, **kwargs):
    pattern = parse_pattern(text)
    catalog = estimate_pattern_catalog(pattern, stream)
    planned = plan_pattern(pattern, catalog, algorithm="GREEDY")
    tracer = Tracer(run_id="test-run")
    matches = build_engines(planned, tracer=tracer, **kwargs).run(stream)
    return tracer, matches


# -- tracer core -------------------------------------------------------------


class TestTracer:
    def test_node_registration_and_fractions(self):
        tracer = Tracer()
        stat = tracer.register_node("join:ab", "join", engine="tree")
        assert stat.node_id == 0 and stat.wall == 0.0
        stat.index_probes, stat.index_hits = 10, 9
        stat.range_probes, stat.range_hits = 8, 2
        stat.probed, stat.created = 20, 5
        assert stat.bucket_hit_fraction == pytest.approx(0.9)
        assert stat.bisect_hit_fraction == pytest.approx(0.25)
        assert stat.survivor_fraction == pytest.approx(0.25)
        empty = tracer.register_node("leaf:a", "leaf")
        assert empty.bucket_hit_fraction == 0.0  # no div-by-zero
        assert empty.survivor_fraction == 0.0

    def test_node_dict_round_trip(self):
        stat = NodeStat(3, "state:1:b", "state", engine="nfa", worker=2)
        stat.events, stat.wall = 17, 0.25
        clone = NodeStat.from_dict(stat.to_dict())
        assert clone.to_dict() == stat.to_dict()

    def test_spans_and_snapshot(self, monkeypatch):
        ticks = iter(range(100))
        monkeypatch.setattr(trace_module, "_clock", lambda: next(ticks))
        tracer = Tracer(run_id="r1")
        tracer.instant("replan", epoch=2)
        with tracer.span("migration", policy="restart"):
            pass
        snapshot = tracer.snapshot()
        assert snapshot["run_id"] == "r1"
        names = [span["name"] for span in snapshot["spans"]]
        assert names == ["replan", "migration"]
        assert snapshot["spans"][0]["attrs"] == {"epoch": 2}
        assert snapshot["spans"][1]["dur"] >= 1  # fake clock ticked

    def test_merge_node_stats_collapses_worker_copies(self):
        tracer_a, tracer_b = Tracer(), Tracer()
        for tracer, events in ((tracer_a, 5), (tracer_b, 7)):
            stat = tracer.register_node("state:0:a", "state", engine="nfa")
            stat.events = events
            stat.wall = 0.5
        merged = merge_node_stats(
            tracer_a.node_dicts() + tracer_b.node_dicts()
        )
        assert len(merged) == 1
        assert merged[0]["events"] == 12
        assert merged[0]["wall"] == pytest.approx(1.0)
        by_worker = merge_node_stats(
            tracer_a.node_dicts() + tracer_b.node_dicts(), keep_worker=True
        )
        assert len(by_worker) in (1, 2)  # worker None collapses


# -- zero cost when off ------------------------------------------------------


class TestZeroCostWhenOff:
    def test_untraced_engines_carry_no_node_stats(self):
        stream = rand_stream(3)
        d = decompose(parse_pattern(RANGE_PATTERN))
        tree = next(iter(enumerate_bushy_trees(d.positive_variables)))
        order = next(iter(enumerate_orders(d.positive_variables)))
        tree_engine = TreeEngine(d, tree, indexed=True, compiled=True)
        nfa_engine = NFAEngine(d, order, indexed=True, compiled=True)
        tree_engine.run(stream)
        nfa_engine.run(stream)
        assert nfa_engine._tstats is None
        assert all(
            leaf.tstat is None for leaf in tree_engine._leaf_for.values()
        )

    def test_detaching_tracer_restores_untraced_structure(self):
        d = decompose(parse_pattern(RANGE_PATTERN))
        order = next(iter(enumerate_orders(d.positive_variables)))
        engine = NFAEngine(d, order, indexed=True, compiled=True)
        engine.set_tracer(Tracer())
        assert engine._tstats is not None
        engine.set_tracer(None)
        assert engine._tstats is None

    def test_untraced_clock_is_never_read(self, monkeypatch):
        def explode():
            raise AssertionError("untraced hot path read the span clock")

        monkeypatch.setattr(trace_module, "_clock", explode)
        stream = rand_stream(5)
        pattern = parse_pattern(RANGE_PATTERN)
        catalog = estimate_pattern_catalog(pattern, stream)
        planned = plan_pattern(pattern, catalog, algorithm="GREEDY")
        build_engines(planned).run(stream)  # no tracer: must not raise

    def test_untraced_run_never_imports_observe(self):
        src = str(Path(__file__).resolve().parent.parent / "src")
        code = (
            "import sys\n"
            "from repro import (Stream, build_engines,"
            " estimate_pattern_catalog, parse_pattern, plan_pattern)\n"
            "from repro.events import Event\n"
            "events = [Event('A', 0.1, {'x': 1}), Event('B', 0.2, {'x': 1}),"
            " Event('C', 0.3, {'x': 1})]\n"
            "stream = Stream(events)\n"
            f"pattern = parse_pattern({RANGE_PATTERN!r})\n"
            "catalog = estimate_pattern_catalog(pattern, stream)\n"
            "planned = plan_pattern(pattern, catalog, algorithm='GREEDY')\n"
            "build_engines(planned).run(stream)\n"
            "assert not [m for m in sys.modules if m.startswith"
            "('repro.observe')], 'observe imported on untraced path'\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": src},
        )
        assert result.returncode == 0, result.stderr


# -- observation neutrality --------------------------------------------------


class TestObservationNeutrality:
    @pytest.mark.parametrize("indexed", [True, False])
    @pytest.mark.parametrize("compiled", [True, False])
    def test_traced_run_is_byte_identical(self, indexed, compiled):
        stream = rand_stream(7, count=100)
        pattern = parse_pattern(RANGE_PATTERN)
        catalog = estimate_pattern_catalog(pattern, stream)
        planned = plan_pattern(pattern, catalog, algorithm="GREEDY")
        baseline = build_engines(
            planned, indexed=indexed, compiled=compiled
        ).run(stream)
        tracer = Tracer()
        traced = build_engines(
            planned, indexed=indexed, compiled=compiled, tracer=tracer
        ).run(stream)
        assert match_records(traced) == match_records(baseline)
        assert tracer.nodes and any(n.events for n in tracer.nodes)

    def test_traced_nodes_attribute_real_work(self):
        tracer, matches = traced_run(
            RANGE_PATTERN, rand_stream(11, count=120)
        )
        assert matches
        assert sum(n.events for n in tracer.nodes) > 0
        assert sum(n.wall for n in tracer.nodes) > 0
        # The hash+range plan exercises both index kinds somewhere.
        assert sum(n.index_probes for n in tracer.nodes) > 0
        assert sum(n.range_probes for n in tracer.nodes) > 0
        assert sum(n.matches for n in tracer.nodes) == len(matches)

    def test_bisect_feedback_matches_scan_evaluation(self, monkeypatch):
        """Satellite regression: candidates a sorted-run bisect excludes
        are reported to the SelectivityTracker as failed theta
        evaluations — the observed (key, outcome) multiset must equal
        what evaluating the predicate over the whole bucket reports."""

        class StubTracker:
            def __init__(self):
                self.observations = Counter()

            def observe(self, key, passed):
                self.observations[(key, passed)] += 1

        stream = rand_stream(13, count=120)
        d = decompose(parse_pattern(RANGE_PATTERN))
        order = next(iter(enumerate_orders(d.positive_variables)))

        def observed() -> Counter:
            engine = NFAEngine(d, order, indexed=True, compiled=False)
            tracker = StubTracker()
            engine.set_selectivity_tracker(tracker)
            engine.run(stream)
            return tracker.observations

        bisected = observed()
        # Disable the bisect narrowing only: every bucket candidate now
        # has the extracted range predicate evaluated for real.
        monkeypatch.setattr(
            "repro.engines.nfa.range_probe_value",
            lambda value_of, subject: NO_BOUND,
        )
        scanned = observed()
        assert bisected == scanned
        assert any(not passed for (_key, passed) in bisected)


# -- registry + exporters ----------------------------------------------------


class TestMetricsRegistry:
    def test_series_ring_buffer_drops_oldest(self):
        registry = MetricsRegistry()
        series = registry.series("queue_depth", capacity=4)
        for value in range(10):
            series.sample(value, t=float(value))
        assert len(series) == 4
        assert [v for _t, v in series.points()] == [6, 7, 8, 9]
        assert series.last == 9

    def test_snapshot_and_prometheus_cover_all_instruments(self):
        stream = rand_stream(17)
        pattern = parse_pattern(RANGE_PATTERN)
        catalog = estimate_pattern_catalog(pattern, stream)
        planned = plan_pattern(pattern, catalog, algorithm="GREEDY")
        engine = build_engines(planned)
        engine.run(stream)
        registry = MetricsRegistry()
        registry.bind_metrics(engine.metrics, source="tree")
        registry.gauge("queue_depth", lambda: 42, help="input backlog")
        registry.series("lag").sample(3.0, t=1.0)
        snapshot = registry.snapshot()
        assert snapshot["series"]["lag"][-1][1] == 3.0
        assert snapshot["gauges"]["queue_depth"] == 42
        text = registry.prometheus()
        assert "repro_queue_depth 42" in text
        assert "repro_lag 3.0" in text
        assert 'source="tree"' in text
        # every exposition line is either a comment or name[{labels}] value
        for line in text.splitlines():
            assert line.startswith(("#", "repro_")), line

    def test_json_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.bind_metrics(EngineMetrics(), source="empty")
        registry.series("x").sample(1.0, t=0.0)
        json.dumps(registry.snapshot())


class TestExport:
    def _snapshot(self):
        tracer, _ = traced_run(RANGE_PATTERN, rand_stream(19))
        tracer.instant("replan", epoch=1)
        return tracer.snapshot()

    def test_json_round_trip(self, tmp_path):
        snapshot = self._snapshot()
        assert json.loads(to_json(snapshot)) == json.loads(
            to_json(json.loads(to_json(snapshot)))
        )
        path = write_json(snapshot, str(tmp_path / "trace.json"))
        assert json.load(open(path))["run_id"] == "test-run"

    def test_chrome_trace_events(self, tmp_path):
        snapshot = self._snapshot()
        events = to_chrome_trace(snapshot)
        phases = {event["ph"] for event in events}
        assert "X" in phases  # node slices
        assert "i" in phases  # the replan instant marker
        assert all(
            "ts" in event
            for event in events
            if event["ph"] != "M"  # metadata rows carry no timestamp
        )
        assert all("name" in event for event in events)
        path = write_chrome_trace(snapshot, str(tmp_path / "trace.pftrace"))
        loaded = json.load(open(path))
        payload = (
            loaded["traceEvents"] if isinstance(loaded, dict) else loaded
        )
        assert len(payload) == len(events)


# -- report + live introspection ---------------------------------------------


class TestReport:
    def test_render_from_trace_file(self, tmp_path):
        tracer, matches = traced_run(RANGE_PATTERN, rand_stream(23, 120))
        assert matches
        tracer.instant("replan", epoch=1)
        path = write_json(tracer.snapshot(), str(tmp_path / "trace.json"))
        report = render_report(load_trace(path))
        assert "Top nodes by wall time" in report
        assert "Selectivity by node" in report
        assert "replan" in report

    def test_report_cli_renders_trace_file(self, tmp_path):
        from repro.observe.report import main

        tracer, _ = traced_run(RANGE_PATTERN, rand_stream(27, 120))
        path = write_json(tracer.snapshot(), str(tmp_path / "trace.json"))
        assert main([path]) == 0

    def test_live_stats_poll_mid_stream(self):
        stream = rand_stream(29, count=400)
        pattern = parse_pattern(KEYED_PATTERN)
        catalog = estimate_pattern_catalog(pattern, stream)
        planned = plan_pattern(pattern, catalog, algorithm="GREEDY")
        serial = match_records(
            canonical_order(build_engines(planned).run(stream))
        )
        server = serve_in_thread()
        config = ParallelConfig(
            backend="socket",
            shards=[server.address],
            workers=2,
            partitioner="key",
            batch_size=32,
            trace=True,
        )
        executor = ParallelExecutor(planned, config=config)
        session = executor.session()
        try:
            run = session.stream()
            events = list(stream)
            out = list(run.feed(events[:200]))
            # Mid-stream: half fed, half still to come.
            stats = run.stats()
            assert stats["metrics"] is not None
            assert stats["nodes"], "traced poll returned no node stats"
            assert any(node["events"] for node in stats["nodes"])
            assert len(stats["workers"]) == config.workers
            live = poll_live(server.address[0], server.address[1])
            report = render_report(live)
            assert "Top nodes by wall time" in report
            assert "workers polled" in report
            out.extend(run.feed(events[200:]))
            out.extend(run.finish())
        finally:
            session.close()
            server.close()
        assert match_records(out) == serial

    def test_untraced_poll_reports_no_nodes(self):
        stream = rand_stream(31, count=120)
        pattern = parse_pattern(KEYED_PATTERN)
        catalog = estimate_pattern_catalog(pattern, stream)
        planned = plan_pattern(pattern, catalog, algorithm="GREEDY")
        config = ParallelConfig(
            backend="serial", workers=2, partitioner="key", batch_size=32
        )
        executor = ParallelExecutor(planned, config=config)
        session = executor.session()
        try:
            run = session.stream()
            run.feed(list(stream))
            stats = run.stats()
            assert stats["nodes"] is None
            assert stats["metrics"] is not None
            run.finish()
        finally:
            session.close()


class TestIngestorObservability:
    def test_registry_sampling_and_async_stats(self):
        stream = rand_stream(37, count=400)
        pattern = parse_pattern(KEYED_PATTERN)
        catalog = estimate_pattern_catalog(pattern, stream)
        planned = plan_pattern(pattern, catalog, algorithm="GREEDY")
        serial = match_records(
            canonical_order(build_engines(planned).run(stream))
        )
        events = list(stream)

        async def main():
            registry = MetricsRegistry()
            server = serve_in_thread()
            config = ParallelConfig(
                backend="socket",
                shards=[server.address],
                workers=2,
                partitioner="key",
                batch_size=32,
                trace=True,
            )
            executor = ParallelExecutor(planned, config=config)
            matches = []
            polled = None
            async with Ingestor(
                executor,
                flush_events=32,
                flush_seconds=0.01,
                registry=registry,
            ) as ingestor:
                async def consume():
                    async for match in ingestor.matches():
                        matches.append(match)

                consumer = asyncio.create_task(consume())
                for event in events:
                    await ingestor.put(
                        Event(
                            event.type,
                            event.timestamp,
                            dict(event.attributes),
                        )
                    )
                # Mid-stream poll: the run is still open (no finish
                # yet).  Polls synchronize at feed-call boundaries, so
                # retry until the pump's first flush has reached the
                # workers and their plan DAGs answer with counters.
                for _ in range(200):
                    polled = await ingestor.stats()
                    if polled["nodes"]:
                        break
                    await asyncio.sleep(0.02)
                await ingestor.close()
                await consumer
            server.close()
            return registry, matches, polled

        registry, matches, polled = asyncio.run(main())
        assert match_records(matches) == serial
        assert polled is not None and polled["metrics"] is not None
        assert polled["nodes"], "traced ingest poll returned no nodes"
        series = registry.snapshot()["series"]
        for name in (
            "ingest_queue_depth",
            "ingest_shed_events",
            "ingest_blocked_puts",
            "frontier_lag_events",
            "worker0_liveness_age_seconds",
            "worker1_liveness_age_seconds",
        ):
            assert name in series and series[name], name
        assert "repro_ingest_queue_depth" in registry.prometheus()


class TestDocsSync:
    """The README failure-mode matrix is generated, never hand-edited."""

    def test_readme_failure_matrix_matches_instruments(self):
        from repro.engines.instruments import failure_matrix_markdown

        readme = (
            Path(__file__).parent.parent / "README.md"
        ).read_text(encoding="utf-8")
        assert failure_matrix_markdown() in readme, (
            "README failure-mode matrix drifted from "
            "repro.engines.instruments.FAILURE_MODES — regenerate the "
            "block with failure_matrix_markdown()"
        )

    def test_summary_keys_cover_instruments(self):
        from repro.engines.instruments import INSTRUMENTS

        summary = EngineMetrics().summary()
        for entry in INSTRUMENTS:
            if entry.kind in ("histogram", "samples"):
                continue
            assert entry.summary_key in summary, entry.name
