"""Unit tests for the join substrate executor and query model."""

import random

import pytest

from repro.cost import ThroughputCostModel, bushy_cost, left_deep_cost
from repro.errors import ReductionError
from repro.join import (
    JoinPredicate,
    JoinQuery,
    Relation,
    RelationFilter,
    execute_plan,
)
from repro.plans import OrderPlan, TreePlan, enumerate_orders, join


def small_query(seed=0, with_filter=False):
    rng = random.Random(seed)
    relations = [
        Relation.random_integers("R1", 8, ("v",), domain=4, rng=rng),
        Relation.random_integers("R2", 6, ("v",), domain=4, rng=rng),
        Relation.random_integers("R3", 5, ("v",), domain=4, rng=rng),
    ]
    predicates = [
        JoinPredicate("R1", "R2", 0.25, fn=lambda a, b: a["v"] == b["v"]),
        JoinPredicate("R2", "R3", 0.5, fn=lambda a, b: a["v"] <= b["v"]),
    ]
    filters = []
    if with_filter:
        filters.append(
            RelationFilter("R1", 0.5, fn=lambda r: r["v"] >= 2)
        )
    return JoinQuery(relations, predicates, filters)


class TestRelation:
    def test_rows_are_copied(self):
        source = [{"v": 1}]
        relation = Relation("R", source)
        source[0]["v"] = 99
        assert relation.rows[0]["v"] == 1

    def test_columns_union(self):
        relation = Relation("R", [{"a": 1}, {"b": 2}])
        assert relation.columns() == ["a", "b"]

    def test_filtered(self):
        relation = Relation("R", [{"v": i} for i in range(5)])
        assert len(relation.filtered(lambda r: r["v"] > 2)) == 2

    def test_random_integers_deterministic(self):
        a = Relation.random_integers("R", 5, ("v",), rng=random.Random(1))
        b = Relation.random_integers("R", 5, ("v",), rng=random.Random(1))
        assert a.rows == b.rows

    def test_empty_name_rejected(self):
        with pytest.raises(ReductionError):
            Relation("", [])


class TestJoinQueryModel:
    def test_duplicate_relation_rejected(self):
        r = Relation("R", [{"v": 1}])
        with pytest.raises(ReductionError):
            JoinQuery([r, Relation("R", [])])

    def test_predicate_unknown_relation_rejected(self):
        r = Relation("R", [{"v": 1}])
        with pytest.raises(ReductionError):
            JoinQuery([r], [JoinPredicate("R", "Z", 0.5)])

    def test_self_predicate_rejected(self):
        with pytest.raises(ReductionError):
            JoinPredicate("R", "R", 0.5)

    def test_selectivities_multiply(self):
        query = JoinQuery(
            [Relation("A", [{}]), Relation("B", [{}])],
            [JoinPredicate("A", "B", 0.5), JoinPredicate("A", "B", 0.2)],
        )
        assert query.pair_selectivity("A", "B") == pytest.approx(0.1)

    def test_query_graph_edges(self):
        query = small_query()
        assert query.query_graph_edges() == {
            frozenset(("R1", "R2")),
            frozenset(("R2", "R3")),
        }

    def test_planning_statistics_window_one(self):
        query = small_query(with_filter=True)
        stats = query.planning_statistics()
        assert stats.window == 1.0
        assert stats.rate("R1") == pytest.approx(8 * 0.5)
        assert stats.selectivity("R1", "R2") == 0.25


class TestExecutor:
    def test_left_deep_equals_bushy_results(self):
        query = small_query(seed=2)
        left = execute_plan(query, OrderPlan(("R1", "R2", "R3")))
        bushy = execute_plan(
            query, TreePlan(join(join("R2", "R3"), "R1"))
        )
        assert left.result_keys() == bushy.result_keys()

    def test_filters_applied_at_scan(self):
        query = small_query(seed=3, with_filter=True)
        result = execute_plan(query, OrderPlan(("R1", "R2", "R3")))
        for row in result.rows:
            assert row["R1"]["v"] >= 2

    def test_node_sizes_recorded_per_node(self):
        query = small_query(seed=1)
        result = execute_plan(query, OrderPlan(("R1", "R2", "R3")))
        labels = [label for label, _ in result.node_sizes]
        assert "R1" in labels and "(R1,R2)" in labels
        assert result.total_intermediate == sum(
            size for _, size in result.node_sizes
        )

    def test_cross_product_when_no_predicate(self):
        query = JoinQuery(
            [
                Relation("A", [{"v": 1}, {"v": 2}]),
                Relation("B", [{"w": 3}] * 3),
            ]
        )
        result = execute_plan(query, OrderPlan(("A", "B")))
        assert result.cardinality == 6

    def test_empty_relation_yields_empty_join(self):
        query = JoinQuery(
            [Relation("A", []), Relation("B", [{"v": 1}])],
            [JoinPredicate("A", "B", 0.5)],
        )
        result = execute_plan(query, OrderPlan(("A", "B")))
        assert result.cardinality == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_cost_model_ranks_executed_intermediates(self, seed):
        """Cheapest-by-model order is never the most expensive in
        reality — the Figure 16 relationship at join level."""
        query = small_query(seed=seed)
        stats = query.planning_statistics()
        model = ThroughputCostModel()
        measured = {}
        predicted = {}
        for order in enumerate_orders(query.relation_names):
            key = order.variables
            predicted[key] = model.order_cost(key, stats)
            measured[key] = execute_plan(query, order).total_intermediate
        best_predicted = min(predicted, key=predicted.get)
        worst_measured = max(measured, key=measured.get)
        assert best_predicted != worst_measured or len(
            set(measured.values())
        ) == 1

    def test_left_deep_cost_matches_expected_sizes_statistically(self):
        # With exact selectivities, predicted intermediate sizes track
        # the executed ones within a reasonable factor.
        rng = random.Random(7)
        relations = [
            Relation.random_integers("A", 30, ("v",), domain=10, rng=rng),
            Relation.random_integers("B", 30, ("v",), domain=10, rng=rng),
        ]
        query = JoinQuery(
            relations,
            [JoinPredicate("A", "B", 0.1, fn=lambda a, b: a["v"] == b["v"])],
        )
        predicted = left_deep_cost(
            ("A", "B"), query.cardinalities(), query.pair_selectivity
        )
        measured = execute_plan(
            query, OrderPlan(("A", "B"))
        ).total_intermediate
        assert measured == pytest.approx(predicted, rel=0.5)

    def test_bushy_cost_counts_leaves(self):
        cardinality = {"A": 3.0, "B": 4.0}
        cost = bushy_cost(
            TreePlan(join("A", "B")), cardinality, lambda a, b: 1.0
        )
        assert cost == pytest.approx(3 + 4 + 12)
