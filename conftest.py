"""Root pytest configuration: per-test timeout enforcement.

CI installs `pytest-timeout` and drives the per-test cap through the
``timeout`` ini option in ``pyproject.toml`` — a hung test (exactly
what the fault-tolerance suite exists to prevent) fails loudly instead
of stalling the whole job.

Environments without the plugin (the dependency-frozen dev container)
get the fallback shim below: a SIGALRM-based cap honoring the same
``timeout`` ini option and ``@pytest.mark.timeout(N)`` marks.  The shim
registers the ini option itself only when the plugin is absent, so the
two never fight over the registration.  SIGALRM only interrupts the
main thread, so the shim cannot cancel a test stuck in C code or on a
worker thread — `pytest-timeout`'s thread-based canceller remains the
real enforcement in CI; the shim is best-effort parity for local runs.

This file must sit at the repository root: ``pytest_addoption`` /
``addini`` hooks only run from initial conftests, and the benchmarks
directory is a pytest rootdir of its own for perf runs.
"""

from __future__ import annotations

import importlib.util
import signal

import pytest

_HAVE_PLUGIN = importlib.util.find_spec("pytest_timeout") is not None


def pytest_addoption(parser):
    if _HAVE_PLUGIN:
        return  # pytest-timeout owns the option
    parser.addini(
        "timeout",
        "per-test timeout in seconds (fallback shim; 0 disables)",
        default="0",
    )


def _limit_for(item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    try:
        return float(item.config.getini("timeout") or 0)
    except (TypeError, ValueError):
        return 0.0


if not _HAVE_PLUGIN and hasattr(signal, "SIGALRM"):

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        limit = _limit_for(item)
        if limit <= 0:
            yield
            return

        def on_alarm(signum, frame):
            raise TimeoutError(
                f"test exceeded the {limit:g}s timeout (fallback shim)"
            )

        previous = signal.signal(signal.SIGALRM, on_alarm)
        signal.setitimer(signal.ITIMER_REAL, limit)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): per-test timeout cap (pytest-timeout, or the "
        "root-conftest SIGALRM shim when the plugin is absent)",
    )
