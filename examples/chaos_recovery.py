"""Fault-tolerant service runtime: chaos in, byte-identical matches out.

The service runtime claims to survive worker kills, frozen workers,
torn socket writes, and shard-server deaths — with the merged match
stream staying byte-identical to a single-threaded interpreted run.
This demo makes that claim checkable in seconds with deterministic
fault injection (:class:`repro.FaultPlan`):

1. a process worker is killed just as batch 4 ships to it — crash
   recovery respawns it and replays the acked window log (exactly-once
   delivery across the crash);
2. a process worker freezes (alive but silent) — the heartbeat
   liveness deadline unmasks it instead of hanging the run;
3. a socket shard's connection is torn mid-frame — the driver
   re-dials with exponential backoff and re-handshakes;
4. the only shard server is killed for good — reconnection exhausts
   and the circuit breaker demotes the workers to local serial
   channels (``degradation="local"``): degraded, but still correct.

Every scenario ends in the same assertion: recovered output ==
interpreted serial output, records compared byte for byte.

Run:  python examples/chaos_recovery.py
"""

import random

from repro import (
    FaultPlan,
    ParallelConfig,
    ParallelExecutor,
    build_engines,
    canonical_order,
    estimate_pattern_catalog,
    parse_pattern,
    plan_pattern,
    serve_in_thread,
)
from repro.bench import format_table
from repro.events import Event, Stream
from repro.parallel import match_records

KEYED = "PATTERN SEQ(A a, B b, C c) WHERE a.k = b.k AND b.k = c.k WITHIN 1.5"


def make_stream(count: int = 500, keys: int = 5, seed: int = 11) -> Stream:
    rng = random.Random(seed)
    events, t = [], 0.0
    for _ in range(count):
        t += rng.uniform(0.01, 0.09)
        events.append(
            Event(
                rng.choice("ABCD"),
                t,
                {"k": rng.randrange(keys), "v": rng.random()},
            )
        )
    return Stream(events)


def run_scenario(planned, stream, config, mid_run=None):
    """One chaos run: feed in halves, return (records, metrics, events)."""
    with ParallelExecutor(planned, config) as executor:
        run = executor.session().stream()
        events = list(stream)
        out = list(run.feed(events[: len(events) // 2]))
        if mid_run is not None:
            mid_run()
        out.extend(run.feed(events[len(events) // 2:]))
        out.extend(run.finish())
        return match_records(out), run.metrics, run.runtime_events


def main() -> None:
    stream = make_stream()
    pattern = parse_pattern(KEYED)
    catalog = estimate_pattern_catalog(pattern, stream)
    planned = plan_pattern(pattern, catalog, algorithm="GREEDY")
    expected = match_records(
        canonical_order(build_engines(planned).run(stream))
    )

    base = dict(
        workers=2,
        partitioner="key",
        batch_size=16,
        recovery="reseed",
        heartbeat_seconds=0.1,
        liveness_seconds=0.5,
        backoff_base=0.02,
        backoff_max=0.2,
    )
    rows = []

    def record(name, records, metrics, events):
        assert records == expected, f"{name}: output diverged!"
        rows.append(
            [
                name,
                "yes",
                metrics.worker_crashes,
                metrics.worker_reseeds,
                metrics.socket_reconnects,
                metrics.heartbeats_missed,
                metrics.shards_degraded,
                " ".join(sorted({type(e).__name__ for e in events})) or "-",
            ]
        )

    # 1. Worker killed mid-run (process backend).
    plan = FaultPlan(seed=1).kill_worker(0, at_batch=4)
    record(
        "kill worker@batch4",
        *run_scenario(
            planned,
            stream,
            ParallelConfig(backend="processes", fault_plan=plan, **base),
        ),
    )

    # 2. Frozen worker: alive but silent until liveness unmasks it.
    plan = FaultPlan(seed=2).freeze_worker(1, at_batch=2)
    record(
        "freeze worker@batch2",
        *run_scenario(
            planned,
            stream,
            ParallelConfig(backend="processes", fault_plan=plan, **base),
        ),
    )

    # 3. Socket write torn mid-frame: re-dial + re-handshake + replay.
    plan = FaultPlan(seed=3).tear_send(0, at_batch=3, tear_bytes=2)
    server = serve_in_thread(fault_plan=plan)
    try:
        record(
            "tear socket@batch3",
            *run_scenario(
                planned,
                stream,
                ParallelConfig(
                    backend="socket",
                    shards=[server.address],
                    fault_plan=plan,
                    **base,
                ),
            ),
        )
    finally:
        server.kill()

    # 4. Shard gone for good: reconnect exhausts, circuit breaker
    #    demotes both workers to local serial channels.
    server = serve_in_thread()
    try:
        record(
            "shard dies for good",
            *run_scenario(
                planned,
                stream,
                ParallelConfig(
                    backend="socket",
                    shards=[server.address],
                    connect_attempts=1,
                    reconnect_attempts=2,
                    degradation="local",
                    degrade_backend="serial",
                    **base,
                ),
                mid_run=server.kill,
            ),
        )
    finally:
        server.kill()

    print(f"serial baseline: {len(expected)} matches\n")
    print(
        format_table(
            [
                "scenario",
                "identical",
                "crashes",
                "reseeds",
                "reconnects",
                "hb_missed",
                "degraded",
                "events",
            ],
            rows,
            title="chaos scenarios vs the interpreted serial run",
        )
    )
    print(
        "\nEvery scenario recovered to byte-identical output; the "
        "counters above\nare the run's own record of what it survived "
        "(metrics.worker_crashes etc.)."
    )


if __name__ == "__main__":
    main()
