"""Using the CEP optimizer stack as a join-order optimizer (Theorem 1).

The reduction works in both directions: here a four-relation join query
is planned by the *CEP* algorithms (via ``JoinQuery.planning_statistics``,
the W = 1 view of Theorem 1), each plan is executed by the join substrate,
and the measured intermediate-result sizes are compared against the
cost-model predictions — the equivalence the paper proves, demonstrated
on live data.

Run:  python examples/join_ordering.py
"""

import random

from repro.bench import format_table
from repro.cost import ThroughputCostModel
from repro.join import JoinPredicate, JoinQuery, Relation, execute_plan
from repro.patterns import decompose, parse_pattern
from repro.optimizers import make_optimizer


def build_query(seed: int = 3) -> JoinQuery:
    rng = random.Random(seed)
    relations = [
        Relation.random_integers("orders", 60, ("customer", "product"),
                                 domain=25, rng=rng),
        Relation.random_integers("customers", 25, ("customer", "region"),
                                 domain=25, rng=rng),
        Relation.random_integers("products", 15, ("product", "category"),
                                 domain=25, rng=rng),
        Relation.random_integers("regions", 8, ("region",), domain=25,
                                 rng=rng),
    ]
    predicates = [
        JoinPredicate("orders", "customers", 1 / 25,
                      fn=lambda o, c: o["customer"] == c["customer"]),
        JoinPredicate("orders", "products", 1 / 25,
                      fn=lambda o, p: o["product"] == p["product"]),
        JoinPredicate("customers", "regions", 1 / 25,
                      fn=lambda c, r: c["region"] == r["region"]),
    ]
    return JoinQuery(relations, predicates)


def main() -> None:
    query = build_query()
    stats = query.planning_statistics()
    model = ThroughputCostModel()

    # Dummy decomposed pattern over the relation names lets the CEP
    # optimizers run unchanged (Theorem 1: W=1, r = |R|).
    spec = ", ".join(f"{n.upper()} {n}" for n in query.relation_names)
    decomposed = decompose(
        parse_pattern(f"PATTERN AND({spec}) WITHIN 1")
    )

    rows = []
    for name in ("TRIVIAL", "EFREQ", "GREEDY", "DP-LD", "DP-B", "KBZ"):
        optimizer = make_optimizer(name)
        plan = optimizer.generate(decomposed, stats, model)
        predicted = optimizer.plan_cost(plan, stats, model)
        executed = execute_plan(query, plan)
        rows.append(
            (
                name,
                str(plan),
                round(predicted, 1),
                executed.total_intermediate,
                executed.cardinality,
            )
        )
    print(
        format_table(
            ("algorithm", "plan", "predicted cost",
             "measured intermediates", "result rows"),
            rows,
            title="Join ordering through the CPG<->JQPG reduction",
        )
    )
    print(
        "\nEvery plan returns the same result rows; the cost model's "
        "ranking tracks the measured intermediate-result sizes."
    )


if __name__ == "__main__":
    main()
