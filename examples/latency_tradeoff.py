"""Throughput/latency trade-off via the hybrid cost model (Section 6.1).

Sweeps the α parameter of ``Cost = Cost_trpt + α·Cost_lat`` and shows
how plans shift from pure-throughput (the temporally last event may sit
early in the plan, delaying detection) to latency-aware (the last event
moves to the end of the plan) — Figure 18 in miniature.

Run:  python examples/latency_tradeoff.py
"""

from repro import parse_pattern
from repro.bench import format_table, run_algorithm
from repro.stats import estimate_pattern_catalog
from repro.workloads import StockMarketConfig, generate_stock_stream


def main() -> None:
    stream = generate_stock_stream(
        StockMarketConfig(symbols=6, duration=240.0, rate_low=0.3,
                          rate_high=2.0, seed=23)
    )
    # A pure-throughput plan may place the pattern's last event (NVDA)
    # early in the evaluation order, which hurts detection latency.
    pattern = parse_pattern(
        "PATTERN SEQ(MSFT m, GOOG g, INTC i, NVDA o) "
        "WHERE m.difference < g.difference WITHIN 8",
        name="latency_demo",
    )
    catalog = estimate_pattern_catalog(pattern, stream, samples=500)

    rows = []
    for algorithm in ("GREEDY", "DP-LD", "DP-B"):
        for alpha in (0.0, 0.5, 1.0):
            result = run_algorithm(
                pattern, stream, catalog, algorithm, alpha=alpha
            )
            rows.append(
                (
                    algorithm,
                    alpha,
                    str(result.plans[0]),
                    f"{result.throughput:,.0f}",
                    round(result.mean_wall_latency_ms, 4),
                )
            )
    print(
        format_table(
            ("algorithm", "alpha", "plan", "events/s",
             "mean detection latency (ms)"),
            rows,
            title="Hybrid cost model: throughput vs detection latency",
        )
    )
    print(
        "\nHigher alpha pushes the pattern's last event to the end of the "
        "plan: detection latency drops, usually at some throughput cost."
    )


if __name__ == "__main__":
    main()
