"""Parallel partitioned execution: one stream, a pool of workers.

An equi-join pattern whose predicates cover every variable with one
key class (`a.k = b.k = c.k`) is sharded by **key**: each event routes
to `hash(k) % workers`, every match forms wholly inside one worker, and
the merged output is byte-identical to the single-engine run.  A
pure-theta pattern has no routing key, so it is sharded by
**overlapping window slices** instead — each slice owns the matches
that start inside it and drops the boundary copies the overlap
produces.

The demo runs both partitioners over the same synthetic stream with
the in-process serial backend (so the example is fast and
deterministic everywhere) and one process-pool run to show the
multi-core path; it prints per-run metrics including the new
``events_routed`` / ``boundary_duplicates_dropped`` /
``worker_count`` counters.

Run:  python examples/parallel_scaling.py
"""

import random

from repro import (
    ParallelConfig,
    ParallelExecutor,
    build_engines,
    canonical_order,
    estimate_pattern_catalog,
    parse_pattern,
    plan_pattern,
)
from repro.bench import format_table
from repro.events import Event, Stream
from repro.parallel import match_records

KEYED = "PATTERN SEQ(A a, B b, C c) WHERE a.k = b.k AND b.k = c.k WITHIN 1.5"
THETA = "PATTERN SEQ(A a, B b, C c) WHERE a.v < b.v AND b.v < c.v WITHIN 0.8"


def make_stream(count: int = 1500, keys: int = 12, seed: int = 7) -> Stream:
    rng = random.Random(seed)
    events, t = [], 0.0
    for _ in range(count):
        t += rng.uniform(0.01, 0.05)
        events.append(
            Event(
                rng.choice("ABC"),
                t,
                {"k": rng.randrange(keys), "v": rng.random()},
            )
        )
    return Stream(events)


def main() -> None:
    stream = make_stream()
    print(f"stream: {stream}\n")

    rows = []
    for label, text, partitioner in (
        ("keyed", KEYED, "key"),
        ("theta", THETA, "window"),
    ):
        pattern = parse_pattern(text)
        catalog = estimate_pattern_catalog(pattern, stream)
        planned = plan_pattern(pattern, catalog, algorithm="GREEDY")

        serial_matches = build_engines(planned).run(stream)
        serial_records = match_records(canonical_order(serial_matches))

        for workers, backend in ((1, "serial"), (4, "serial"), (2, "processes")):
            executor = ParallelExecutor(
                planned,
                ParallelConfig(
                    workers=workers, partitioner=partitioner, backend=backend
                ),
            )
            matches = executor.run(stream)
            identical = match_records(matches) == serial_records
            metrics = executor.metrics
            rows.append(
                [
                    label,
                    executor.partitioner_name,
                    backend,
                    workers,
                    len(matches),
                    "yes" if identical else "NO",
                    metrics.events_routed,
                    metrics.boundary_duplicates_dropped,
                    f"{executor.throughput:,.0f}",
                ]
            )

    print(
        format_table(
            (
                "pattern",
                "partitioner",
                "backend",
                "workers",
                "matches",
                "identical to serial",
                "events routed",
                "boundary drops",
                "ev/s",
            ),
            rows,
            title="Parallel partitioned execution (merged output is canonical)",
        )
    )
    print(
        "\nEvery row's match list is byte-identical to the single-engine"
        "\nrun: partitioning changes how the stream is executed, never"
        "\nwhat it detects.  See benchmarks/bench_fig22_parallel_scaling.py"
        "\nfor the worker-count throughput sweep."
    )


if __name__ == "__main__":
    main()
