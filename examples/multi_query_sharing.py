"""Multi-query sharing: five overlapping patterns, one stream pass.

A deployment watching a stock stream rarely runs a single pattern.
Here five SEQ queries share a two-symbol core (same types, same
predicate, same window) and diverge in their suffixes.  Planning them
jointly with ``run_workload`` merges the equivalent sub-plans into one
DAG: the core is evaluated once per event and its partial matches are
fanned out to every query, while each query still receives exactly the
matches an independent engine would report.

Run:  python examples/multi_query_sharing.py
"""

from repro import build_engines, plan_pattern, run_workload
from repro.bench import format_table
from repro.stats import estimate_pattern_catalog
from repro.workloads import (
    MultiQueryWorkloadConfig,
    StockMarketConfig,
    generate_stock_stream,
    overlapping_stock_workload,
)

ALGORITHM = "DP-B"  # tree plans on both sides: like-for-like work counts


def main() -> None:
    stream = generate_stock_stream(
        StockMarketConfig(symbols=8, duration=120.0, seed=5)
    )
    workload = overlapping_stock_workload(
        MultiQueryWorkloadConfig(
            queries=5, core_size=2, suffix_size=1, window=8.0, seed=3
        ),
        symbols=8,
    )
    print(f"stream: {stream}")
    print(f"workload: {workload}\n")

    catalogs = {
        name: estimate_pattern_catalog(pattern, stream)
        for name, pattern in workload.items()
    }

    # Independent baseline: one engine per query, the stream replayed
    # once per query.
    independent_pm = 0
    independent_matches = {}
    for name, pattern in workload.items():
        planned = plan_pattern(pattern, catalogs[name], algorithm=ALGORITHM)
        engine = build_engines(planned)
        independent_matches[name] = len(engine.run(stream))
        independent_pm += engine.metrics.partial_matches_created

    # Shared execution: one engine, one pass, all queries.
    result = run_workload(
        workload, stream, algorithm=ALGORITHM, catalogs=catalogs
    )

    rows = [
        (name, independent_matches[name], len(result.matches[name]))
        for name in workload.names
    ]
    print(
        format_table(
            ("query", "matches (independent)", "matches (shared)"),
            rows,
            title="Per-query match counts: shared execution is lossless",
        )
    )

    report = result.report
    print(
        f"\nplan DAG: {report.dag_nodes} nodes for "
        f"{report.subtrees_total} per-query subtrees "
        f"({report.shared_nodes} shared, {report.reuse_count} reuses); "
        f"model cost shared away: {report.cost_savings:.0%}"
    )
    shared_pm = result.metrics.partial_matches_created
    print(
        f"partial matches created: {independent_pm} independent vs "
        f"{shared_pm} shared "
        f"({1 - shared_pm / independent_pm:.0%} fewer partial matches)"
    )


if __name__ == "__main__":
    main()
