"""Adaptive plan re-optimization under statistics drift (Section 6.3).

A two-phase stream: initially symbol FAST dominates and RARE is scarce;
midway the roles flip.  The adaptive controller tracks arrival rates
over a sliding horizon *and* predicate selectivities from the engine's
own evaluation outcomes, detects the drift, and regenerates the plan.

The demo then contrasts the migration policies: a ``restart`` swap
throws the in-flight partial matches away — every match straddling a
switch is silently lost — while ``recompute`` replays the engine's
window buffer into the new plan and loses nothing (its match list is
byte-identical to a run that never switches).

Run:  python examples/adaptive_reoptimization.py
"""

import random

from repro import parse_pattern
from repro.adaptive import AdaptiveController, DriftDetector
from repro.events import Event, Stream
from repro.parallel import canonical_order, match_records
from repro.stats import StatisticsCatalog


def two_phase_stream(seed: int = 5) -> Stream:
    rng = random.Random(seed)
    events = []
    t = 0.0
    # Phase 1: RARE ~0.2/s, FAST ~4/s.
    while t < 120.0:
        t += rng.expovariate(4.2)
        name = "RARE" if rng.random() < 0.05 else "FAST"
        events.append(Event(name, t, {"v": rng.random()}))
    # Phase 2: rates flip.
    while t < 240.0:
        t += rng.expovariate(4.2)
        name = "FAST" if rng.random() < 0.05 else "RARE"
        events.append(Event(name, t, {"v": rng.random()}))
    return Stream(events)


def run_policy(pattern, stream, migration: str):
    controller = AdaptiveController(
        pattern,
        # Initial statistics describe phase 1 only.
        StatisticsCatalog({"FAST": 4.0, "RARE": 0.2}),
        algorithm="GREEDY",
        horizon=15.0,
        check_interval=100,
        detector=DriftDetector(threshold=0.8),
        migration=migration,
    )
    matches = controller.run(stream)
    return controller, matches


def main() -> None:
    stream = two_phase_stream()
    pattern = parse_pattern(
        "PATTERN SEQ(FAST f, RARE r) WHERE f.v < r.v WITHIN 5",
        name="adaptive_demo",
    )

    results = {}
    for migration in ("restart", "recompute"):
        controller, matches = run_policy(pattern, stream, migration)
        results[migration] = (controller, matches)
        print(f"--- migration={migration!r}")
        print(f"    initial plan: {controller.plan_history[0][0].plan}")
        print(f"    final plan:   {controller.current_plans[0]}")
        print(f"    re-optimizations: {controller.reoptimizations}")
        print(f"    matches found: {len(matches)}")
        metrics = controller.metrics
        print(
            f"    pm migrated: {metrics.pm_migrated}, "
            f"matches saved by migration: "
            f"{metrics.matches_saved_by_migration}"
        )

    lost = len(results["recompute"][1]) - len(results["restart"][1])
    print(
        f"\nThe plan starts by buffering the then-rare RARE symbol; after "
        f"the drift the controller flips the order to wait for FAST "
        f"instead.  Every restart-based swap drops the partial matches in "
        f"flight: restart lost {lost} matches that recompute migration "
        f"carried across the very same plan switches."
    )

    # The recompute run is not merely "more matches" — it is exactly the
    # no-switch match list, byte for byte.
    never = AdaptiveController(
        pattern,
        StatisticsCatalog({"FAST": 4.0, "RARE": 0.2}),
        detector=DriftDetector(threshold=1e9),
    )
    baseline = match_records(canonical_order(never.run(stream)))
    migrated = match_records(canonical_order(results["recompute"][1]))
    assert migrated == baseline
    print("recompute output verified byte-identical to a never-switching run")


if __name__ == "__main__":
    main()
