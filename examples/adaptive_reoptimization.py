"""Adaptive plan re-optimization under statistics drift (Section 6.3).

A two-phase stream: initially symbol FAST dominates and RARE is scarce;
midway the roles flip.  The adaptive controller tracks arrival rates
over a sliding horizon, detects the drift, and regenerates the plan —
the mechanism Section 6.3 sketches (full treatment in the companion
paper [27]).

Run:  python examples/adaptive_reoptimization.py
"""

import random

from repro import parse_pattern
from repro.adaptive import AdaptiveController, DriftDetector
from repro.events import Event, Stream
from repro.stats import StatisticsCatalog


def two_phase_stream(seed: int = 5) -> Stream:
    rng = random.Random(seed)
    events = []
    t = 0.0
    # Phase 1: RARE ~0.2/s, FAST ~4/s.
    while t < 120.0:
        t += rng.expovariate(4.2)
        name = "RARE" if rng.random() < 0.05 else "FAST"
        events.append(Event(name, t, {"v": rng.random()}))
    # Phase 2: rates flip.
    while t < 240.0:
        t += rng.expovariate(4.2)
        name = "FAST" if rng.random() < 0.05 else "RARE"
        events.append(Event(name, t, {"v": rng.random()}))
    return Stream(events)


def main() -> None:
    stream = two_phase_stream()
    pattern = parse_pattern(
        "PATTERN SEQ(FAST f, RARE r) WHERE f.v < r.v WITHIN 5",
        name="adaptive_demo",
    )
    # Initial statistics describe phase 1 only.
    catalog = StatisticsCatalog({"FAST": 4.0, "RARE": 0.2})

    controller = AdaptiveController(
        pattern,
        catalog,
        algorithm="GREEDY",
        horizon=30.0,
        check_interval=200,
        detector=DriftDetector(threshold=1.0),
    )
    print(f"initial plan: {controller.current_plans[0]}")
    matches = controller.run(stream)
    print(f"final plan:   {controller.current_plans[0]}")
    print(f"re-optimizations: {controller.reoptimizations}")
    print(f"matches found: {len(matches)}")
    print(
        "\nThe plan starts by buffering the then-rare RARE symbol; after "
        "the drift the controller flips the order to wait for FAST instead."
    )


if __name__ == "__main__":
    main()
