"""Quickstart: the paper's four-cameras example (Section 1).

Four traffic cameras A, B, C, D photograph passing vehicles; camera D is
faulty and transmits only one frame in ten.  We detect
``SEQ(A a, B b, C c, D d)`` with equal vehicle IDs and compare the
trivial evaluation order (A -> B -> C -> D, Figure 1(a)) against the
cost-based reordered plan that waits for the rare camera D first
(Figure 1(b)).

Run:  python examples/quickstart.py
"""

from repro.bench import format_table, run_algorithm
from repro.stats import estimate_pattern_catalog
from repro.workloads import TrafficConfig, four_cameras_pattern, generate_traffic_stream


def main() -> None:
    stream = generate_traffic_stream(TrafficConfig(vehicles=400, seed=7))
    pattern = four_cameras_pattern(window=90.0)
    print(f"stream: {stream}")
    print(f"events per camera: {stream.count_by_type()}")
    print(f"pattern: {pattern}\n")

    catalog = estimate_pattern_catalog(pattern, stream, samples=500)

    rows = []
    for algorithm in ("TRIVIAL", "EFREQ", "GREEDY", "DP-LD", "DP-B"):
        result = run_algorithm(pattern, stream, catalog, algorithm)
        rows.append(
            (
                algorithm,
                str(result.plans[0]),
                result.matches,
                result.pm_created,
                result.peak_partial_matches,
                f"{result.throughput:,.0f}",
            )
        )

    print(
        format_table(
            ("algorithm", "plan", "matches", "PMs created", "peak PMs", "events/s"),
            rows,
            title="Four cameras: plan quality by algorithm",
        )
    )
    print(
        "\nAll algorithms report identical matches; the reordered plans "
        "wait for the rare camera D and create far fewer partial matches."
    )


if __name__ == "__main__":
    main()
