"""The always-on service runtime: sessions, streaming, async ingestion.

One executor, three ways to drive it:

1. **Persistent session** — ``executor.run()`` now keeps its worker
   pool alive between runs (plans ship once, processes are forked
   once), so the second run skips all spin-up.  The demo times both.
2. **Incremental streaming** — ``session.stream()`` accepts the stream
   chunk by chunk and returns each match the moment the canonical-
   order safety frontier proves nothing earlier can still arrive; the
   concatenated output is byte-identical to the one-shot run.
3. **Async ingestion** — :class:`repro.service.Ingestor` is the
   asyncio front door: bounded queue, block-or-shed backpressure,
   time/size-based flushing, and an async match iterator with
   per-match detection latency (p50/p95/p99 from the histogram).

A loopback TCP shard (``repro.service.shard_server``) shows the same
protocol crossing a socket — start one on another host with
``python -m repro.service.shard_server`` and point
``ParallelConfig(backend="socket", shards=[(host, port)])`` at it.

Run:  python examples/service_runtime.py
"""

import asyncio
import random
import time

from repro import (
    ParallelConfig,
    ParallelExecutor,
    build_engines,
    canonical_order,
    estimate_pattern_catalog,
    parse_pattern,
    plan_pattern,
)
from repro.events import Event, Stream
from repro.parallel import match_records
from repro.service import Ingestor, serve_in_thread

PATTERN = "PATTERN SEQ(A a, B b, C c) WHERE a.k = b.k AND b.k = c.k WITHIN 1.5"


def make_stream(count: int = 1200, keys: int = 10, seed: int = 11) -> Stream:
    rng = random.Random(seed)
    events, t = [], 0.0
    for _ in range(count):
        t += rng.uniform(0.01, 0.05)
        events.append(
            Event(
                rng.choice("ABC"),
                t,
                {"k": rng.randrange(keys), "v": rng.random()},
            )
        )
    return Stream(events)


def main() -> None:
    stream = make_stream()
    pattern = parse_pattern(PATTERN)
    catalog = estimate_pattern_catalog(pattern, stream)
    planned = plan_pattern(pattern, catalog, algorithm="GREEDY")
    expected = match_records(canonical_order(build_engines(planned).run(stream)))

    # 1. Persistent session: the second run reuses the forked pool.
    config = ParallelConfig(workers=2, partitioner="key", backend="processes")
    with ParallelExecutor(planned, config) as executor:
        t0 = time.perf_counter()
        first = executor.run(stream)
        cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        second = executor.run(stream)
        warm = time.perf_counter() - t0
        assert match_records(first) == expected
        assert match_records(second) == expected
        print(
            f"session reuse: cold run {cold * 1e3:.1f} ms, warm run "
            f"{warm * 1e3:.1f} ms ({cold / warm:.1f}x) — "
            f"{len(second)} matches, byte-identical both times"
        )

        # 2. Incremental streaming against the same warm pool.
        run = executor.session().stream()
        events = list(stream)
        streamed = []
        chunks_with_output = 0
        for start in range(0, len(events), 100):
            out = run.feed(events[start : start + 100])
            chunks_with_output += bool(out)
            streamed.extend(out)
        streamed.extend(run.finish())
        assert match_records(streamed) == expected
        print(
            f"streaming: {len(streamed)} matches over "
            f"{len(events) // 100 + 1} chunks ({chunks_with_output} chunks "
            "released matches early), emission order == canonical order"
        )

    # 3. A loopback TCP shard speaking the same worker protocol.
    server = serve_in_thread()  # 127.0.0.1, ephemeral port
    try:
        socket_config = ParallelConfig(
            workers=2,
            partitioner="key",
            backend="socket",
            shards=[server.address],
        )
        with ParallelExecutor(planned, socket_config) as executor:
            matches = executor.run(stream)
            assert match_records(matches) == expected
            print(
                f"socket shard at {server.address[0]}:{server.address[1]}: "
                f"{len(matches)} matches, byte-identical over TCP"
            )
    finally:
        server.close()

    # 4. Asyncio ingestion with backpressure and latency percentiles.
    async def ingest() -> None:
        executor = ParallelExecutor(planned, ParallelConfig(
            workers=2, partitioner="key", backend="threads"
        ))
        got = []
        async with Ingestor(
            executor, flush_events=128, flush_seconds=0.02
        ) as ingestor:
            async def consume():
                async for match in ingestor.matches():
                    got.append(match)

            consumer = asyncio.create_task(consume())
            for event in stream:
                await ingestor.put(event)
            await ingestor.close()
            await consumer
        assert match_records(got) == expected
        hist = ingestor.metrics.detection_latency
        print(
            f"async ingestion: {len(got)} matches, detection latency "
            f"p50 {hist.p50 * 1e3:.1f} ms / p95 {hist.p95 * 1e3:.1f} ms / "
            f"p99 {hist.p99 * 1e3:.1f} ms over {len(hist)} samples"
        )
        executor.close()

    asyncio.run(ingest())


if __name__ == "__main__":
    main()
