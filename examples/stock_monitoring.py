"""Stock-price pattern monitoring (the paper's evaluation workload).

Reproduces the Section 7.2 scenario in miniature: a synthetic NASDAQ
tick stream, the paper's example pattern ("examine the shift in Intel's
stock when Google's price change exceeds Microsoft's"), plus a nested
disjunction showing multi-plan detection — comparing all order-based
and tree-based algorithms of Section 7.1.

Run:  python examples/stock_monitoring.py
"""

from repro import parse_pattern
from repro.bench import format_table, run_algorithm
from repro.optimizers import ORDER_ALGORITHMS, TREE_ALGORITHMS
from repro.stats import estimate_pattern_catalog
from repro.workloads import StockMarketConfig, generate_stock_stream


def compare(pattern, stream, algorithms, title):
    catalog = estimate_pattern_catalog(pattern, stream, samples=600)
    rows = []
    for algorithm in algorithms:
        result = run_algorithm(pattern, stream, catalog, algorithm)
        rows.append(
            (
                algorithm,
                result.matches,
                round(result.plan_cost, 1),
                result.peak_partial_matches,
                result.peak_memory_units,
                f"{result.throughput:,.0f}",
            )
        )
    print(
        format_table(
            ("algorithm", "matches", "plan cost", "peak PMs",
             "peak memory", "events/s"),
            rows,
            title=title,
        )
    )
    print()


def main() -> None:
    stream = generate_stock_stream(
        StockMarketConfig(symbols=8, duration=240.0, rate_low=0.3,
                          rate_high=2.5, seed=11)
    )
    print(f"stream: {stream}\n")

    conjunction = parse_pattern(
        "PATTERN AND(MSFT m, GOOG g, INTC i) "
        "WHERE m.difference < g.difference WITHIN 8",
        name="paper_conjunction",
    )
    compare(
        conjunction,
        stream,
        ORDER_ALGORITHMS,
        "AND(MSFT, GOOG, INTC) — order-based algorithms",
    )
    compare(
        conjunction,
        stream,
        TREE_ALGORITHMS,
        "AND(MSFT, GOOG, INTC) — tree-based algorithms",
    )

    sequence = parse_pattern(
        "PATTERN SEQ(MSFT m, GOOG g, INTC i, AAPL p) "
        "WHERE m.difference < g.difference AND i.difference < p.difference "
        "WITHIN 8",
        name="sequence_4",
    )
    compare(sequence, stream, ("TRIVIAL", "EFREQ", "GREEDY", "DP-LD"),
            "SEQ of four symbols — order-based algorithms")

    nested = parse_pattern(
        "PATTERN OR(SEQ(MSFT m, GOOG g), SEQ(INTC i, AAPL p)) WITHIN 8",
        name="nested_disjunction",
    )
    compare(nested, stream, ("GREEDY", "DP-LD"),
            "Disjunction of two sequences (one plan per disjunct)")


if __name__ == "__main__":
    main()
